"""Candidate indexes: where "find promising merge partners" lives.

The merge pass (paper §5.1) needs, for each function, the ``t`` most similar
other functions by fingerprint distance.  The seed computed this with a full
O(N) scan per query — O(N²) per module and the dominant cost on large
modules.  This module decouples that search behind a :class:`CandidateIndex`
interface with three strategies:

* :class:`ExhaustiveIndex` — the extracted seed behaviour: score every live
  function per query.  Exact, and the reference the others are measured
  against.
* :class:`SizeBucketIndex` — functions live in log2(size) buckets and a query
  only scans buckets within a radius of its own.  Exploits the fact that the
  Manhattan fingerprint distance is bounded below by the size difference, so
  far-away buckets can rarely win.
* :class:`MinHashLSHIndex` — order-sensitive signatures: the bucketised
  opcode sequence is shingled into k-grams, MinHash-compressed, and stored in
  banded LSH tables.  A query only scores functions sharing at least one band
  key, which for clone families is a tiny, near-constant-size pool.

All three return :class:`~repro.analysis.fingerprint.RankedCandidate` lists
ranked by the *same* ``(distance, -size, name)`` key as the seed's
``CandidateRanking``, so the exhaustive strategy is bit-identical to the old
behaviour and the sub-linear ones are conservative over-approximations (with
an optional full-scan fallback when a probe comes back too small).

Indexes are incremental: the merge pass calls :meth:`CandidateIndex.remove`
for consumed functions and :meth:`CandidateIndex.update` for freshly merged
ones, so no strategy ever rebuilds from scratch mid-run.
"""

from __future__ import annotations

import hashlib
import random
import time
from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.counters import count_construction
from ..analysis.fingerprint import (
    Fingerprint,
    RankedCandidate,
    opcode_shingles,
    rank_candidates,
)
from ..ir.function import Function
from ..ir.module import Module
from .stats import SearchStats
from .strategy import SearchStrategy, register_strategy, resolve_strategy


class CandidateIndex(ABC):
    """Maintains per-function fingerprints and answers top-k partner queries.

    Subclasses implement ``_insert`` / ``_discard`` (structure maintenance)
    and ``_candidate_pool`` (which functions a query scores).  Ranking,
    fingerprint bookkeeping and stats recording are shared here, so every
    strategy orders survivors identically to the exhaustive reference.
    """

    strategy_name = "abstract"

    #: Whether a function's membership in a query's probe pool depends only
    #: on the (query, function) pair — never on the rest of the population.
    #: Exhaustive scans and band-collision lookups qualify; anything with
    #: population-sensitive behaviour (radius expansion, size-triggered
    #: sub-partitioning) does not.  Consumers caching answers across index
    #: mutations (``repro.merge.pass_manager.prefetch_answer_valid``) may
    #: only reason incrementally about pools with this property; the
    #: conservative default forces them to drop cached answers on any
    #: mutation.
    population_independent_pools = False

    def __init__(self, module: Module, min_size: int = 2,
                 strategy: Optional[SearchStrategy] = None,
                 stats: Optional[SearchStats] = None,
                 analysis_manager=None,
                 artifact_store=None,
                 precomputed=None) -> None:
        self.module = module
        self.min_size = min_size
        self.strategy = strategy or resolve_strategy(self.strategy_name)
        self.stats = stats or SearchStats(strategy=self.strategy.name)
        #: Optional repro.analysis.manager manager: fingerprints are then
        #: pulled from the shared per-function cache (and stay valid across
        #: index rebuilds for functions the merge pass never touched) instead
        #: of being computed privately by every index.
        self.analysis_manager = analysis_manager
        #: Optional repro.persist.ArtifactStore: strategies with expensive
        #: per-function derivations (the MinHash signatures) then load them
        #: by content digest and only compute for functions whose digest the
        #: store has never seen.
        self.artifact_store = artifact_store
        #: Optional per-function artifacts a repro.parallel worker pool
        #: derived ahead of the build: ``{function: {"fingerprint": ...,
        #: "signature": ...}}``.  Consulted before the manager, the store or
        #: any computation, so an index over pre-shipped artifacts builds
        #: without touching the functions' bodies at all.
        self.precomputed = precomputed or {}
        #: Whether the most recent :meth:`candidates_for` answered through
        #: the full-scan fallback rather than its probe pool alone.  Such an
        #: answer depends on the fallback staying *armed*, which consumers
        #: caching answers across index mutations must account for (see
        #: ``repro.merge.pass_manager.prefetch_answer_valid``).
        self.last_query_used_fallback = False
        #: Optional repro.obs hooks (see :meth:`attach_metrics`); resolved to
        #: concrete metric children once so queries pay no registry lookups.
        self._query_timer = None
        self._fallback_counter = None
        self.fingerprints: Dict[Function, Fingerprint] = {}
        for function in module.defined_functions():
            # Initial build: populate without touching the maintenance stats,
            # so inserts/removals/updates count only incremental churn.
            self._index_function(function)

    def attach_metrics(self, registry) -> None:
        """Record query timings and fallback scans into ``registry``.

        Purely observational — rankings, stats counters and fallback
        behaviour are identical with or without a registry.  Passing
        ``None`` detaches.
        """
        if registry is None:
            self._query_timer = None
            self._fallback_counter = None
            return
        self._query_timer = registry.timer(
            "repro_search_query_seconds",
            help="Wall-clock of candidates_for queries, by strategy.",
            strategy=self.strategy.name)
        self._fallback_counter = registry.counter(
            "repro_search_fallback_queries_total",
            help="Queries that fell back to a full population scan.",
            strategy=self.strategy.name)

    # ------------------------------------------------------------ population
    def __len__(self) -> int:
        return len(self.fingerprints)

    def __contains__(self, function: Function) -> bool:
        return function in self.fingerprints

    def functions_by_size(self) -> List[Function]:
        """Indexed functions ordered from largest to smallest."""
        return sorted(self.fingerprints, key=lambda f: -self.fingerprints[f].size)

    def export_artifacts(self, function: Function) -> Dict[str, object]:
        """The derived artifacts of one indexed function, ready to ship.

        The base index only derives fingerprints; strategies with further
        per-function derivations (the MinHash signatures) extend this.  The
        format matches the ``precomputed`` map accepted by the constructor,
        so artifacts exported from one index rebuild another — in this or any
        other process — without recomputation.
        """
        return {"fingerprint": self.fingerprints[function]}

    # ----------------------------------------------------------- maintenance
    def add(self, function: Function) -> None:
        """Index a function (ignored when it is below the size threshold)."""
        if self._index_function(function):
            self.stats.inserts += 1

    def remove(self, function: Function) -> None:
        """Forget a function (e.g. once it has been merged away)."""
        if self._unindex_function(function):
            self.stats.removals += 1

    def update(self, function: Function) -> None:
        """Re-index a (new or rewritten) function."""
        removed = self._unindex_function(function)
        added = self._index_function(function)
        if removed or added:
            self.stats.updates += 1

    def _index_function(self, function: Function) -> bool:
        if function.num_instructions() < self.min_size:
            return False
        precomputed = self.precomputed.get(function)
        if precomputed is not None and "fingerprint" in precomputed:
            fingerprint = precomputed["fingerprint"]
        elif self.analysis_manager is not None:
            fingerprint = self.analysis_manager.fingerprint(function)
        else:
            fingerprint = Fingerprint.of(function)
        self.fingerprints[function] = fingerprint
        self._insert(function, fingerprint)
        return True

    def _unindex_function(self, function: Function) -> bool:
        fingerprint = self.fingerprints.pop(function, None)
        if fingerprint is None:
            return False
        self._discard(function, fingerprint)
        return True

    # ---------------------------------------------------------------- query
    def candidates_for(self, function: Function, threshold: Optional[int] = None,
                       exclude: Optional[set] = None) -> List[RankedCandidate]:
        """The top-``threshold`` most similar indexed candidates for ``function``."""
        if threshold is None:
            threshold = self.strategy.top_k
        fingerprint = self.fingerprints.get(function)
        if fingerprint is None or threshold <= 0:
            return []
        exclude = exclude or set()
        query_started = time.perf_counter() if self._query_timer is not None \
            else 0.0
        floor = self.strategy.similarity_floor
        pairs = list(self._candidate_pool(function, fingerprint, threshold, exclude))
        ranked = rank_candidates(fingerprint, pairs, threshold, floor)
        scanned = len(pairs)
        self.last_query_used_fallback = False
        # Fall back only when the *probe pool* was too small — if the pool
        # covered >= threshold candidates and ranking still came up short,
        # the similarity floor filtered them and a full scan would too.
        if len(ranked) < threshold and len(pairs) < threshold \
                and self.strategy.fallback_to_scan \
                and scanned < self._available_candidates(function, exclude):
            self.last_query_used_fallback = True
            # Conservative fallback: the probe under-delivered, so also scan
            # the rest of the population.  Only the complement is scored —
            # the probe's short top-k merges with the complement's.
            seen = {other for other, _ in pairs}
            extra = [(other, other_fingerprint) for other, other_fingerprint
                     in self._filter_pairs(self.fingerprints.items(),
                                           function, exclude)
                     if other not in seen]
            if extra:
                ranked = self._merge_ranked(
                    ranked, rank_candidates(fingerprint, extra, threshold, floor),
                    threshold)
                scanned += len(extra)
        self.stats.record_query(scanned=scanned, returned=len(ranked),
                                population=max(0, len(self.fingerprints) - 1))
        if self._query_timer is not None:
            self._query_timer.observe(time.perf_counter() - query_started)
            if self.last_query_used_fallback:
                self._fallback_counter.inc()
        return ranked

    def _available_candidates(self, function: Function, exclude: set) -> int:
        """How many indexed candidates a full scan for ``function`` would score."""
        excluded_indexed = sum(1 for other in exclude
                               if other is not function and other in self.fingerprints)
        return max(0, len(self.fingerprints) - 1 - excluded_indexed)

    def _merge_ranked(self, first: List[RankedCandidate],
                      second: List[RankedCandidate],
                      threshold: int) -> List[RankedCandidate]:
        combined = first + second
        combined.sort(key=lambda c: (c.distance,
                                     -self.fingerprints[c.function].size,
                                     c.function.name))
        return combined[:threshold]

    def _filter_pairs(self, pairs: "Iterable[Tuple[Function, Fingerprint]]",
                      function: Function, exclude: set
                      ) -> List[Tuple[Function, Fingerprint]]:
        """Drop the query function and excluded entries from a candidate pool.

        The single home of the self/exclude pre-filter: every
        ``_candidate_pool`` implementation routes through it, and
        :meth:`candidates_for` trusts the returned pool (it used to re-filter
        defensively, doing the same membership tests twice per candidate).
        """
        return [(other, other_fingerprint) for other, other_fingerprint in pairs
                if other is not function and other not in exclude]

    # ------------------------------------------------------------- subclass
    @abstractmethod
    def _insert(self, function: Function, fingerprint: Fingerprint) -> None:
        """Add a function to the strategy's search structure."""

    @abstractmethod
    def _discard(self, function: Function, fingerprint: Fingerprint) -> None:
        """Remove a function from the strategy's search structure."""

    @abstractmethod
    def _candidate_pool(self, function: Function, fingerprint: Fingerprint,
                        threshold: int, exclude: set
                        ) -> Iterable[Tuple[Function, Fingerprint]]:
        """``(function, fingerprint)`` pairs a query should score.

        Must not contain the query function or excluded entries — route the
        raw pool through :meth:`_filter_pairs` (the caller trusts the result
        and does not re-filter).
        """


class ExhaustiveIndex(CandidateIndex):
    """The seed's full-scan ranking, extracted behind the index interface."""

    strategy_name = "exhaustive"
    population_independent_pools = True  # the pool *is* the population

    def _insert(self, function: Function, fingerprint: Fingerprint) -> None:
        pass

    def _discard(self, function: Function, fingerprint: Fingerprint) -> None:
        pass

    def _candidate_pool(self, function: Function, fingerprint: Fingerprint,
                        threshold: int, exclude: set
                        ) -> Iterable[Tuple[Function, Fingerprint]]:
        return self._filter_pairs(self.fingerprints.items(), function, exclude)


#: Modulus of the universal hash family: the Mersenne prime 2^61 - 1.
_MERSENNE_PRIME = (1 << 61) - 1


def _hash_family(seed: int, count: int) -> List[Tuple[int, int]]:
    """``count`` universal-hash parameter pairs, deterministic in ``seed``."""
    rng = random.Random(seed)
    return [(rng.randrange(1, _MERSENNE_PRIME), rng.randrange(0, _MERSENNE_PRIME))
            for _ in range(count)]


def _minhash(tokens: Sequence[int],
             hash_params: Sequence[Tuple[int, int]]) -> List[int]:
    """MinHash of a token set under each ``(a, b)`` universal hash."""
    return [min((a * token + b) % _MERSENNE_PRIME for token in tokens)
            for a, b in hash_params]


def _fingerprint_tokens(fingerprint: Fingerprint) -> List[int]:
    """Unary encoding of a fingerprint: bucket ``i`` with count ``c``
    contributes tokens ``(i, 1) .. (i, c)``.

    The Jaccard similarity of two unary encodings is ``(1 - d') / (1 + d')``
    for normalised Manhattan distance ``d'``, so MinHash bands over these
    tokens recall exactly the low-distance pairs the exhaustive ranking puts
    first — the band family shared by :class:`MinHashLSHIndex` (its
    histogram bands) and :class:`SizeBucketIndex` (its bucket partitions).
    """
    return [((bucket << 16) | count)
            for bucket, total in enumerate(fingerprint.counts)
            for count in range(1, total + 1)] or [0]


class SizeBucketIndex(CandidateIndex):
    """Log-scale size bucketing: only comparably-sized functions are scanned.

    The fingerprint distance between two functions is at least the difference
    of their sizes (every surplus instruction adds one to some bucket count),
    so a candidate 4x larger than the query can only outrank a same-size
    candidate when the latter is already very dissimilar.  Scanning the query
    function's log2(size) bucket plus ``bucket_radius`` neighbours on each
    side therefore keeps near-exhaustive recall while skipping most of the
    population on modules with a wide size distribution.  The radius widens
    automatically until the pool covers the requested ``threshold``.

    Size alone degenerates on *homogeneous* populations: when most functions
    share a size bucket, every query scanned essentially everything.  Large
    buckets are therefore sub-partitioned by MinHash bands over the
    fingerprint's unary encoding (``bucket_bands`` x ``bucket_rows``): within
    a bucket of more than ``bucket_band_min`` members, a query only scans the
    members colliding with it in at least one band — same-size functions
    still partition by similarity.  Small buckets keep the exact full-bucket
    scan (partitioning them saves nothing and risks recall).
    """

    strategy_name = "size_buckets"
    # Deliberately NOT population-independent: the radius widens until the
    # pool covers the threshold and large buckets flip between full and
    # band-partitioned scans at ``bucket_band_min`` members, so who a query
    # scans depends on who else is indexed.  Cached answers must therefore
    # be dropped on any index mutation (the inherited False default).

    def __init__(self, module: Module, min_size: int = 2,
                 strategy: Optional[SearchStrategy] = None,
                 stats: Optional[SearchStats] = None,
                 analysis_manager=None,
                 artifact_store=None,
                 precomputed=None) -> None:
        # Insertion-ordered dicts keep per-bucket membership deterministic.
        self._buckets: Dict[int, Dict[Function, Fingerprint]] = {}
        strategy = strategy or resolve_strategy(self.strategy_name)
        self._band_count = max(0, strategy.bucket_bands)
        self._band_rows = max(1, strategy.bucket_rows)
        self._band_min = max(0, strategy.bucket_band_min)
        self._band_hashes = _hash_family(strategy.hash_seed ^ 0x5B5B,
                                         self._band_count * self._band_rows)
        #: Per size bucket, one hash table per band: band key -> members.
        self._band_tables: Dict[int, List[Dict[Tuple[int, ...],
                                               Dict[Function, Fingerprint]]]] = {}
        self._band_keys: Dict[Function, Tuple[Tuple[int, ...], ...]] = {}
        super().__init__(module, min_size=min_size, strategy=strategy, stats=stats,
                         analysis_manager=analysis_manager,
                         artifact_store=artifact_store,
                         precomputed=precomputed)

    @staticmethod
    def _bucket_of(size: int) -> int:
        return max(0, size).bit_length()

    def _band_keys_of(self, fingerprint: Fingerprint) -> Tuple[Tuple[int, ...], ...]:
        values = _minhash(_fingerprint_tokens(fingerprint), self._band_hashes)
        rows = self._band_rows
        return tuple(tuple(values[band * rows:(band + 1) * rows])
                     for band in range(self._band_count))

    def _insert(self, function: Function, fingerprint: Fingerprint) -> None:
        bucket = self._bucket_of(fingerprint.size)
        self._buckets.setdefault(bucket, {})[function] = fingerprint
        if not self._band_count:
            return
        keys = self._band_keys_of(fingerprint)
        self._band_keys[function] = keys
        tables = self._band_tables.setdefault(
            bucket, [{} for _ in range(self._band_count)])
        for band, key in enumerate(keys):
            tables[band].setdefault(key, {})[function] = fingerprint

    def _discard(self, function: Function, fingerprint: Fingerprint) -> None:
        bucket = self._bucket_of(fingerprint.size)
        members = self._buckets.get(bucket)
        if members is not None:
            members.pop(function, None)
            if not members:
                del self._buckets[bucket]
        keys = self._band_keys.pop(function, None)
        tables = self._band_tables.get(bucket)
        if keys is None or tables is None:
            return
        for band, key in enumerate(keys):
            band_members = tables[band].get(key)
            if band_members is not None:
                band_members.pop(function, None)
                if not band_members:
                    del tables[band][key]
        if bucket not in self._buckets:
            self._band_tables.pop(bucket, None)

    def _bucket_pool(self, bucket: int, function: Function,
                     query_keys: Optional[Tuple[Tuple[int, ...], ...]]
                     ) -> Iterable[Tuple[Function, Fingerprint]]:
        """One size bucket's candidates: everyone in a small bucket, only the
        band-colliding members of a large one."""
        members = self._buckets[bucket]
        if (query_keys is None or not self._band_count
                or len(members) <= self._band_min):
            return members.items()
        tables = self._band_tables.get(bucket)
        if tables is None:
            return members.items()
        pool: Dict[Function, Fingerprint] = {}
        for band, key in enumerate(query_keys):
            hit = tables[band].get(key)
            if hit:
                pool.update(hit)
        return pool.items()

    def _candidate_pool(self, function: Function, fingerprint: Fingerprint,
                        threshold: int, exclude: set
                        ) -> Iterable[Tuple[Function, Fingerprint]]:
        center = self._bucket_of(fingerprint.size)
        occupied = sorted(self._buckets)
        radius = max(0, self.strategy.bucket_radius)
        query_keys = self._band_keys.get(function) if self._band_count else None
        if query_keys is None and self._band_count:
            query_keys = self._band_keys_of(fingerprint)
        pool: List[Tuple[Function, Fingerprint]] = []
        included: set = set()
        while True:
            for bucket in occupied:
                if bucket not in included and abs(bucket - center) <= radius:
                    included.add(bucket)
                    pool.extend(self._filter_pairs(
                        self._bucket_pool(bucket, function, query_keys),
                        function, exclude))
            if len(pool) >= threshold or len(included) == len(occupied):
                return pool
            radius += 1


def signature_config_key(strategy: SearchStrategy) -> str:
    """Store/ship key fragment identifying one MinHash signature geometry.

    Signatures persisted or shipped under this key are only reusable by an
    index with the same banding geometry, shingle size and hash family.
    """
    return hashlib.blake2b(
        repr(("minhash-v1", strategy.shingle_size,
              max(1, strategy.num_bands), max(1, strategy.rows_per_band),
              max(0, strategy.fingerprint_bands),
              max(1, strategy.fingerprint_rows),
              strategy.hash_seed)).encode("ascii"),
        digest_size=8).hexdigest()


def _signature_hash_family(strategy: SearchStrategy) -> List[Tuple[int, int]]:
    """The universal-hash parameters of one signature geometry."""
    total = (max(1, strategy.num_bands) * max(1, strategy.rows_per_band)
             + max(0, strategy.fingerprint_bands) * max(1, strategy.fingerprint_rows))
    return _hash_family(strategy.hash_seed, total)


def _shingle_id(shingle: Tuple[str, ...]) -> int:
    digest = hashlib.blake2b("\x1f".join(shingle).encode("ascii"),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big")


def compute_minhash_signature(function: Function, fingerprint: Fingerprint,
                              strategy: SearchStrategy,
                              hash_params: Optional[Sequence[Tuple[int, int]]] = None
                              ) -> Tuple[int, ...]:
    """The MinHash signature of one function under ``strategy``'s geometry.

    Shared by :class:`MinHashLSHIndex` and the ``repro.parallel`` worker
    tasks, so a signature computed in a worker over a reconstructed function
    is bit-identical to one the index would compute itself.  ``hash_params``
    lets a caller amortise the hash-family construction across functions.
    """
    count_construction("MinHashSignature")
    if hash_params is None:
        hash_params = _signature_hash_family(strategy)
    shingles = [_shingle_id(shingle)
                for shingle in opcode_shingles(function, strategy.shingle_size)]
    if not shingles:
        shingles = [0]
    split = max(1, strategy.num_bands) * max(1, strategy.rows_per_band)
    signature = _minhash(shingles, hash_params[:split])
    if max(0, strategy.fingerprint_bands):
        signature.extend(_minhash(_fingerprint_tokens(fingerprint),
                                  hash_params[split:]))
    return tuple(signature)


def valid_signature_payload(payload, expected_length: int) -> bool:
    """Whether a loaded/shipped signature payload is structurally sound."""
    return (isinstance(payload, (list, tuple))
            and len(payload) == expected_length
            and all(isinstance(value, int)
                    and not isinstance(value, bool)
                    and 0 <= value < _MERSENNE_PRIME
                    for value in payload))


def _minhash_gaps(tokens: Sequence[int],
                  hash_params: Sequence[Tuple[int, int]]) -> List[int]:
    """Per-row MinHash *gaps*: second-smallest minus smallest hash value.

    A small gap means the row's minimum was nearly beaten by another token —
    a near-identical function whose token set differs slightly is likely to
    flip exactly such rows.  Multi-probe therefore masks the smallest-gap
    rows first (data-driven probing, Lv et al. style) instead of a fixed
    row order.  Token sets with a single element have no runner-up; their
    gap is the hash modulus, so they are probed last.
    """
    gaps: List[int] = []
    for a, b in hash_params:
        best = second = _MERSENNE_PRIME
        for token in tokens:
            value = (a * token + b) % _MERSENNE_PRIME
            if value < best:
                second = best
                best = value
            elif best < value < second:
                second = value
        gaps.append(second - best)
    return gaps


def compute_probe_gaps(function: Function, fingerprint: Fingerprint,
                       strategy: SearchStrategy,
                       hash_params: Optional[Sequence[Tuple[int, int]]] = None
                       ) -> Tuple[int, ...]:
    """Per-row probe gaps aligned with :func:`compute_minhash_signature`.

    Row ``i`` of the returned tuple is the gap of row ``i`` of the signature
    (shingle rows first, then fingerprint rows).  Shared with the
    ``repro.parallel`` worker tasks via ``export_artifacts``/``precomputed``
    so a worker's probe order is bit-identical to the parent's.
    """
    if hash_params is None:
        hash_params = _signature_hash_family(strategy)
    shingles = [_shingle_id(shingle)
                for shingle in opcode_shingles(function, strategy.shingle_size)]
    if not shingles:
        shingles = [0]
    split = max(1, strategy.num_bands) * max(1, strategy.rows_per_band)
    gaps = _minhash_gaps(shingles, hash_params[:split])
    if max(0, strategy.fingerprint_bands):
        gaps.extend(_minhash_gaps(_fingerprint_tokens(fingerprint),
                                  hash_params[split:]))
    return tuple(gaps)


def valid_probe_gaps(payload, expected_length: int) -> bool:
    """Whether a loaded/shipped probe-gap payload is structurally sound."""
    return (isinstance(payload, (list, tuple))
            and len(payload) == expected_length
            and all(isinstance(value, int)
                    and not isinstance(value, bool)
                    and 0 <= value <= _MERSENNE_PRIME
                    for value in payload))


class MinHashLSHIndex(CandidateIndex):
    """Shingled-opcode MinHash signatures in banded LSH tables.

    Each function's bucketised opcode sequence is cut into ``shingle_size``
    k-grams; the shingle set is compressed into a MinHash signature of
    ``num_bands * rows_per_band`` hashes drawn from a seeded universal hash
    family (deterministic across processes, unlike ``hash(str)``).  The
    signature is split into bands of ``rows_per_band`` rows; each band is a
    key into one hash table, and a query scores exactly the functions that
    collide with it in at least one band — for clone families a small,
    near-constant pool regardless of module size.

    Two functions with Jaccard shingle similarity ``s`` collide in some band
    with probability ``1 - (1 - s^r)^b``; the defaults (b=8, r=3) put the
    S-curve threshold near ``s ≈ 0.5``, well below the shingle similarity of
    clone-family members (typically 0.85+), which is what makes the index a
    conservative pre-filter rather than a lossy one.

    Shingle bands alone cannot see pairs whose opcode *histograms* match while
    their opcode *sequences* differ — and the exhaustive reference ranks by
    histogram (Manhattan) distance.  A second band family therefore MinHashes
    the fingerprint itself, unary-encoded (bucket ``i`` with count ``c``
    contributes tokens ``(i, 1) .. (i, c)``): the Jaccard similarity of two
    unary encodings is ``(1 - d') / (1 + d')`` for normalised Manhattan
    distance ``d'``, so these bands recall exactly the low-distance pairs the
    reference ranking puts first, sequence overlap or not.
    """

    strategy_name = "minhash_lsh"
    #: Band collision is a pairwise predicate over (query, candidate)
    #: signatures — the rest of the population never changes who collides.
    population_independent_pools = True

    def __init__(self, module: Module, min_size: int = 2,
                 strategy: Optional[SearchStrategy] = None,
                 stats: Optional[SearchStats] = None,
                 analysis_manager=None,
                 artifact_store=None,
                 precomputed=None) -> None:
        strategy = strategy or resolve_strategy(self.strategy_name)
        self._num_bands = max(1, strategy.num_bands)
        self._rows = max(1, strategy.rows_per_band)
        self._fp_bands = max(0, strategy.fingerprint_bands)
        self._fp_rows = max(1, strategy.fingerprint_rows)
        self._hash_params = _signature_hash_family(strategy)
        self._config_key = signature_config_key(strategy)
        self._tables: List[Dict[Tuple[int, ...], Dict[Function, Fingerprint]]] = [
            {} for _ in range(self._num_bands + self._fp_bands)]
        #: Multi-probe: per band, auxiliary tables keyed by the band key with
        #: one row position masked out, so a query can also reach members
        #: whose signature differs from its own in that single row.  Members
        #: are inserted under *every* masked position; a query probes only
        #: the ``multiprobe`` positions whose rows have the smallest hash
        #: gaps (see :func:`compute_probe_gaps`) — the rows most likely to
        #: differ on a near-identical candidate.
        self._multiprobe = max(0, strategy.multiprobe)
        self._masked_tables: List[Dict[Tuple[int, Tuple[int, ...]],
                                       Dict[Function, Fingerprint]]] = [
            {} for _ in range(self._num_bands + self._fp_bands)] \
            if self._multiprobe else []
        self._signatures: Dict[Function, Tuple[int, ...]] = {}
        self._probe_gaps: Dict[Function, Tuple[int, ...]] = {}
        super().__init__(module, min_size=min_size, strategy=strategy, stats=stats,
                         analysis_manager=analysis_manager,
                         artifact_store=artifact_store,
                         precomputed=precomputed)

    # ------------------------------------------------------------ signatures
    def _signature(self, function: Function, fingerprint: Fingerprint) -> Tuple[int, ...]:
        shipped = self.precomputed.get(function)
        if shipped is not None:
            payload = shipped.get("signature")
            if valid_signature_payload(payload, len(self._hash_params)):
                return tuple(payload)
        store = self.artifact_store
        store_key = None
        if store is not None:
            store_key = f"{function.content_digest()}.{self._config_key}"
            payload = store.load("minhash_signature", store_key)
            if payload is not None:
                if valid_signature_payload(payload, len(self._hash_params)):
                    return tuple(payload)
                store.note_invalid_payload()
        signature = compute_minhash_signature(function, fingerprint,
                                              self.strategy, self._hash_params)
        if store is not None:
            store.store("minhash_signature", store_key, list(signature))
        return signature

    def _probe_gaps_for(self, function: Function,
                        fingerprint: Fingerprint) -> Optional[Tuple[int, ...]]:
        """Per-row probe gaps of one function, shipped or computed locally.

        Reconstructed worker-side functions carry no body; when their gaps
        were not shipped either, ``None`` falls the query back to the fixed
        first-``multiprobe`` row order.
        """
        shipped = self.precomputed.get(function)
        if shipped is not None:
            payload = shipped.get("probe_gaps")
            if valid_probe_gaps(payload, len(self._hash_params)):
                return tuple(payload)
        if getattr(function, "blocks", None) is None:
            return None
        return compute_probe_gaps(function, fingerprint, self.strategy,
                                  self._hash_params)

    def export_artifacts(self, function: Function) -> Dict[str, object]:
        artifacts = super().export_artifacts(function)
        signature = self._signatures.get(function)
        if signature is not None:
            artifacts["signature"] = signature
        gaps = self._probe_gaps.get(function)
        if gaps is not None:
            artifacts["probe_gaps"] = gaps
        return artifacts

    def _masked_keys(self, key: Tuple[int, ...]):
        """Every masked key of one band key: ``(position, key-without-it)``.

        Members are inserted under all positions, so the *query* side is free
        to probe whichever positions its own gaps rank as most fragile.
        """
        for position in range(len(key)):
            yield position, key[:position] + key[position + 1:]

    def _probe_positions(self, key: Tuple[int, ...], start: int,
                         gaps: Optional[Tuple[int, ...]]):
        """Which row positions of one band a query masks, fragile rows first."""
        count = min(self._multiprobe, len(key))
        if gaps is None:
            return range(count)
        return sorted(range(len(key)),
                      key=lambda position: (gaps[start + position], position)
                      )[:count]

    def _band_keys(self, signature: Tuple[int, ...]):
        """``(band, first-row-offset, key)`` triples of one signature."""
        rows = self._rows
        split = self._num_bands * rows
        for band in range(self._num_bands):
            yield band, band * rows, signature[band * rows:(band + 1) * rows]
        rows = self._fp_rows
        for band in range(self._fp_bands):
            yield (self._num_bands + band, split + band * rows,
                   signature[split + band * rows:split + (band + 1) * rows])

    # ----------------------------------------------------------- maintenance
    def _insert(self, function: Function, fingerprint: Fingerprint) -> None:
        signature = self._signature(function, fingerprint)
        self._signatures[function] = signature
        if self._multiprobe:
            gaps = self._probe_gaps_for(function, fingerprint)
            if gaps is not None:
                self._probe_gaps[function] = gaps
        for band, _, key in self._band_keys(signature):
            self._tables[band].setdefault(key, {})[function] = fingerprint
            if self._multiprobe:
                for masked in self._masked_keys(key):
                    self._masked_tables[band].setdefault(
                        masked, {})[function] = fingerprint

    def _discard(self, function: Function, fingerprint: Fingerprint) -> None:
        signature = self._signatures.pop(function, None)
        self._probe_gaps.pop(function, None)
        if signature is None:
            return
        for band, _, key in self._band_keys(signature):
            members = self._tables[band].get(key)
            if members is not None:
                members.pop(function, None)
                if not members:
                    del self._tables[band][key]
            if self._multiprobe:
                for masked in self._masked_keys(key):
                    masked_members = self._masked_tables[band].get(masked)
                    if masked_members is not None:
                        masked_members.pop(function, None)
                        if not masked_members:
                            del self._masked_tables[band][masked]

    # ---------------------------------------------------------------- query
    def _candidate_pool(self, function: Function, fingerprint: Fingerprint,
                        threshold: int, exclude: set
                        ) -> Iterable[Tuple[Function, Fingerprint]]:
        signature = self._signatures.get(function)
        if signature is None:
            return []
        gaps = self._probe_gaps.get(function) if self._multiprobe else None
        pool: Dict[Function, Fingerprint] = {}
        for band, start, key in self._band_keys(signature):
            members = self._tables[band].get(key)
            if members:
                pool.update(members)
            if self._multiprobe:
                # Neighbouring buckets: members that agree with the query on
                # every row of this band except the masked one.  The masked
                # positions are the query's smallest-gap rows — the rows a
                # near-duplicate is most likely to have flipped.
                for position in self._probe_positions(key, start, gaps):
                    masked = (position, key[:position] + key[position + 1:])
                    members = self._masked_tables[band].get(masked)
                    if members:
                        pool.update(members)
        return self._filter_pairs(pool.items(), function, exclude)


register_strategy(ExhaustiveIndex.strategy_name, ExhaustiveIndex)
register_strategy(SizeBucketIndex.strategy_name, SizeBucketIndex)
register_strategy(MinHashLSHIndex.strategy_name, MinHashLSHIndex)
