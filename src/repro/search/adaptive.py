"""The ``adaptive`` search strategy: pick a concrete index per module.

Every concrete strategy has a regime where it loses (ROADMAP: "small modules
stop paying banding overhead"): ``minhash_lsh`` spends two band families of
MinHash work per function, which a 30-function module never amortises, while
``size_buckets`` degenerates on size-homogeneous populations where everyone
shares one log2 bucket.  ``adaptive`` inspects the module *before* building
anything — population size and the spread of function sizes (the
fingerprint-width statistic, available as ``num_instructions`` without
computing a single fingerprint) — and delegates to the concrete strategy that
fits:

* population below ``adaptive_small_population`` → ``exhaustive`` (a full
  scan over a small module is cheaper than any index build);
* the most-populated log2-size bucket holds at least
  ``adaptive_dominant_share`` of the population → ``minhash_lsh`` (size
  bucketing cannot separate a homogeneous module; content bands can);
* otherwise → ``size_buckets`` (wide size spread: the cheap size partition
  already prunes most of the population).

The returned index *is* the concrete index — same ranking, same maintenance,
same stats — with :attr:`SearchStats.strategy` reporting the concrete choice
so runs stay observable, while the merge report's ``search_strategy`` keeps
the requested ``"adaptive"``.
"""

from __future__ import annotations

from typing import Optional

from ..ir.module import Module
from .stats import SearchStats
from .strategy import SearchStrategy, register_strategy, resolve_strategy

ADAPTIVE_STRATEGY = "adaptive"


def choose_adaptive_strategy(module: Module, min_size: int,
                             strategy: SearchStrategy) -> str:
    """The concrete strategy name ``adaptive`` delegates to for ``module``."""
    sizes = [function.num_instructions()
             for function in module.defined_functions()
             if function.num_instructions() >= min_size]
    population = len(sizes)
    if population < max(0, strategy.adaptive_small_population):
        return "exhaustive"
    buckets: dict = {}
    for size in sizes:
        bucket = size.bit_length()
        buckets[bucket] = buckets.get(bucket, 0) + 1
    dominant_share = max(buckets.values()) / population if population else 0.0
    if dominant_share >= strategy.adaptive_dominant_share:
        return "minhash_lsh"
    return "size_buckets"


def make_adaptive_index(module: Module, min_size: int = 2,
                        strategy: Optional[SearchStrategy] = None,
                        stats: Optional[SearchStats] = None,
                        analysis_manager=None,
                        artifact_store=None,
                        precomputed=None):
    """Index factory registered under ``"adaptive"``.

    Inspects the module, rewrites the strategy's ``name`` to the concrete
    choice (every other knob is kept, so a tuned adaptive config tunes its
    delegates too) and builds that index.
    """
    from .strategy import _REGISTRY  # deferred: strategy registers this factory

    strategy = strategy or resolve_strategy(ADAPTIVE_STRATEGY)
    chosen = choose_adaptive_strategy(module, min_size, strategy)
    resolved = strategy.with_options(name=chosen)
    factory = _REGISTRY[chosen]
    return factory(module, min_size=min_size, strategy=resolved, stats=stats,
                   analysis_manager=analysis_manager,
                   artifact_store=artifact_store,
                   precomputed=precomputed)


register_strategy(ADAPTIVE_STRATEGY, make_adaptive_index)
