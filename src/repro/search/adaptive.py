"""The ``adaptive`` search strategy: pick a concrete index per population.

Every concrete strategy has a regime where it loses (ROADMAP: "small modules
stop paying banding overhead"): ``minhash_lsh`` spends two band families of
MinHash work per function, which a 30-function module never amortises, while
``size_buckets`` degenerates on size-homogeneous populations where everyone
shares one log2 bucket.  ``adaptive`` inspects the population — its size and
the spread of function sizes (available as ``num_instructions`` without
computing a single fingerprint) — and delegates to the concrete strategy that
fits:

* population below ``adaptive_small_population`` → ``exhaustive`` (a full
  scan over a small module is cheaper than any index build);
* the most-populated log2-size bucket holds at least
  ``adaptive_dominant_share`` of the population → ``minhash_lsh`` (size
  bucketing cannot separate a homogeneous module; content bands can);
* otherwise → ``size_buckets`` (wide size spread: the cheap size partition
  already prunes most of the population).

:class:`AdaptiveIndex` keeps that choice *live*: every ``add``/``remove``/
``update`` re-evaluates it against the current population, and when the
verdict changes — a module merged down across the exhaustive cutoff, an
incremental delta stream narrowing the size spread — the wrapper rebuilds its
delegate in place, reusing the old delegate's exported artifacts (fingerprints
and any MinHash signatures it already holds) so nothing already derived is
recomputed.  The choice is a pure function of the indexed population, so an
adaptive index mutated through any interleaving ends up with the same
delegate — and the same answers — as a fresh adaptive index over the final
population.

:attr:`SearchStats.strategy` always reports the *current* concrete choice so
runs stay observable, while the merge report's ``search_strategy`` keeps the
requested ``"adaptive"``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..ir.module import Module
from .stats import SearchStats
from .strategy import SearchStrategy, register_strategy, resolve_strategy

ADAPTIVE_STRATEGY = "adaptive"


def choose_for_sizes(sizes: Sequence[int], strategy: SearchStrategy) -> str:
    """The concrete strategy ``adaptive`` picks for one population of sizes."""
    population = len(sizes)
    if population < max(0, strategy.adaptive_small_population):
        return "exhaustive"
    buckets: Dict[int, int] = {}
    for size in sizes:
        bucket = size.bit_length()
        buckets[bucket] = buckets.get(bucket, 0) + 1
    dominant_share = max(buckets.values()) / population if population else 0.0
    if dominant_share >= strategy.adaptive_dominant_share:
        return "minhash_lsh"
    return "size_buckets"


def choose_adaptive_strategy(module: Module, min_size: int,
                             strategy: SearchStrategy) -> str:
    """The concrete strategy name ``adaptive`` delegates to for ``module``."""
    return choose_for_sizes(
        [function.num_instructions()
         for function in module.defined_functions()
         if function.num_instructions() >= min_size], strategy)


class _IndexedPopulation:
    """A delegate-rebuild population: quacks like a module of known members."""

    def __init__(self, functions: List) -> None:
        self._functions = functions

    def defined_functions(self) -> List:
        return list(self._functions)


class AdaptiveIndex:
    """A :class:`~repro.search.index.CandidateIndex` whose concrete strategy
    tracks the population.

    Construction evaluates :func:`choose_adaptive_strategy` exactly like the
    old one-shot factory; every mutation re-evaluates it over the indexed
    population and swaps the delegate when the verdict changes.  All queries,
    stats and artifact export forward to the current delegate.
    """

    #: The delegate can flip between strategies on any mutation, so a cached
    #: pool answer is never provably stable across mutations — consumers
    #: (``prefetch_answer_valid``) must drop cached answers, even while the
    #: current delegate's own pools are population-independent.
    population_independent_pools = False

    def __init__(self, module: Module, min_size: int = 2,
                 strategy: Optional[SearchStrategy] = None,
                 stats: Optional[SearchStats] = None,
                 analysis_manager=None,
                 artifact_store=None,
                 precomputed=None) -> None:
        self.module = module
        self.min_size = min_size
        #: The requested (``name="adaptive"``) strategy: every knob is kept
        #: when delegating, so a tuned adaptive config tunes its delegates.
        self.config = strategy or resolve_strategy(ADAPTIVE_STRATEGY)
        self.analysis_manager = analysis_manager
        self.artifact_store = artifact_store
        self._registry = None
        chosen = choose_adaptive_strategy(module, min_size, self.config)
        self._stats = stats or SearchStats(strategy=chosen)
        self._stats.strategy = chosen
        self._delegate = self._build(chosen, module,
                                     precomputed if precomputed is not None
                                     else {})

    def _build(self, chosen: str, population, precomputed):
        from .strategy import _REGISTRY  # deferred: strategy registers us

        resolved = self.config.with_options(name=chosen)
        delegate = _REGISTRY[chosen](
            population, min_size=self.min_size, strategy=resolved,
            stats=self._stats, analysis_manager=self.analysis_manager,
            artifact_store=self.artifact_store, precomputed=precomputed)
        if self._registry is not None:
            delegate.attach_metrics(self._registry)
        return delegate

    # -------------------------------------------------------- re-evaluation
    def _reevaluate(self) -> None:
        sizes = [fingerprint.size
                 for fingerprint in self._delegate.fingerprints.values()]
        chosen = choose_for_sizes(sizes, self.config)
        if chosen == self._delegate.strategy.name:
            return
        old = self._delegate
        # Rebuild over the surviving members in their insertion order, seeded
        # with everything the old delegate already derived (fingerprints, and
        # signatures/probe gaps when it was a MinHash index) plus any still
        # pending externally shipped artifacts for functions yet to come.
        precomputed = dict(old.precomputed)
        for function in old.fingerprints:
            precomputed[function] = dict(old.export_artifacts(function))
        self._stats.strategy = chosen
        delegate = self._build(
            chosen, _IndexedPopulation(list(old.fingerprints)), precomputed)
        # The member overlays were valid only for the rebuild itself: a later
        # in-place mutation + update() must re-derive, not re-read them
        # (precomputed entries survive construction and update() consults
        # them, so leaving the overlays in place would serve stale artifacts).
        for function in old.fingerprints:
            delegate.precomputed.pop(function, None)
        self._delegate = delegate

    # ----------------------------------------------------------- delegation
    @property
    def strategy(self) -> SearchStrategy:
        return self._delegate.strategy

    @property
    def stats(self) -> SearchStats:
        return self._delegate.stats

    @property
    def fingerprints(self):
        return self._delegate.fingerprints

    @property
    def precomputed(self):
        return self._delegate.precomputed

    @property
    def last_query_used_fallback(self) -> bool:
        return self._delegate.last_query_used_fallback

    def attach_metrics(self, registry) -> None:
        self._registry = registry
        self._delegate.attach_metrics(registry)

    def __len__(self) -> int:
        return len(self._delegate)

    def __contains__(self, function) -> bool:
        return function in self._delegate

    def functions_by_size(self):
        return self._delegate.functions_by_size()

    def export_artifacts(self, function):
        return self._delegate.export_artifacts(function)

    def candidates_for(self, function, threshold=None, exclude=None):
        return self._delegate.candidates_for(function, threshold,
                                             exclude=exclude)

    # ----------------------------------------------------------- maintenance
    def add(self, function) -> None:
        self._delegate.add(function)
        self._reevaluate()

    def remove(self, function) -> None:
        self._delegate.remove(function)
        self._reevaluate()

    def update(self, function) -> None:
        self._delegate.update(function)
        self._reevaluate()


def make_adaptive_index(module: Module, min_size: int = 2,
                        strategy: Optional[SearchStrategy] = None,
                        stats: Optional[SearchStats] = None,
                        analysis_manager=None,
                        artifact_store=None,
                        precomputed=None) -> AdaptiveIndex:
    """Index factory registered under ``"adaptive"``."""
    return AdaptiveIndex(module, min_size=min_size, strategy=strategy,
                         stats=stats, analysis_manager=analysis_manager,
                         artifact_store=artifact_store,
                         precomputed=precomputed)


register_strategy(ADAPTIVE_STRATEGY, make_adaptive_index)
