"""Worker-side task implementations.

A *task* is a named pair of pure functions — ``prepare(shared) -> context``
run once per worker, and ``run(context, batch) -> result`` run per batch —
operating exclusively on plain, picklable data.  Function IR crosses the
process boundary as its canonical, name-independent serialization
(:func:`repro.ir.printer.canonical_function_text`, addressed by
:meth:`repro.ir.function.Function.content_digest`), and workers reconstruct
read-only IR with :func:`repro.ir.parser.parse_canonical_function` — the
round trip is digest-stable, so whatever a worker derives is bit-identical to
what the parent would have derived itself.

Three tasks ship, one per read-only hot phase of the merge pipeline:

* ``index_artifacts`` — fingerprints + MinHash signatures for digest-sharded
  function batches.  Persist-aware: each worker opens the shared
  :class:`~repro.persist.ArtifactStore` **read-only** and only computes what
  the store has never seen; the parent is the sole writer.
* ``candidates`` — batched ``candidates_for`` queries: each worker rebuilds
  the candidate index from shipped fingerprints/signatures (no parsing at
  all — queries touch no function body) and answers its query shard with the
  exact ranking the parent index would produce.
* ``score_pairs`` — alignment + cost-model profitability scoring of candidate
  pairs: workers reconstruct the two functions, align their linearised
  sequences and estimate the merge benefit.  An upper-bound *scoring* of the
  pair (matched instructions can at best be deduplicated); the committed
  decision still requires serial codegen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Tuple

from ..obs import MetricsRegistry, attach_events, maybe_span

from ..analysis.fingerprint import Fingerprint
from ..analysis.size_model import get_target
from ..ir.function import Function
from ..ir.parser import parse_canonical_function
from ..merge.alignment import align
from ..merge.linearize import linearize
from ..persist.cache import ANALYSIS_KIND_PREFIX, _decode_fingerprint, \
    _encode_fingerprint
from ..persist.store import ArtifactStore
from ..search.index import _signature_hash_family, compute_minhash_signature, \
    signature_config_key, valid_signature_payload
from ..search.stats import SearchStats
from ..search.strategy import SearchStrategy, make_index


class Task(NamedTuple):
    """One registered worker task."""

    prepare: Callable[[Any], Any]
    run: Callable[[Any, Any], Any]


_TASKS: Dict[str, Task] = {}


def register_task(name: str, prepare: Callable[[Any], Any],
                  run: Callable[[Any, Any], Any]) -> None:
    """Register (or override) a task name -> implementation binding."""
    _TASKS[name] = Task(prepare, run)


def get_task(name: str) -> Task:
    """Look up a registered task (workers resolve tasks by name only)."""
    try:
        return _TASKS[name]
    except KeyError:
        raise KeyError(f"unknown parallel task {name!r}; registered: "
                       f"{', '.join(sorted(_TASKS))}") from None


#: Worker-process-wide parse memo: ``(name, text) -> Function``.  Tasks only
#: ever *read* reconstructed functions, so a parse is valid for as long as
#: the text is — which in a persistent worker (``ParallelConfig.persistent``)
#: spans jobs: a resident service re-submitting a mostly-unchanged module
#: re-parses only what changed.  Ephemeral workers die after one phase, where
#: the memo degenerates to the old per-context cache.  Bounded FIFO so an
#: unbounded job stream cannot grow a worker forever.
_PARSE_MEMO: Dict[Tuple[str, str], Function] = {}
_PARSE_MEMO_CAP = 8192


def cached_parse(text: str, name: str) -> Tuple[Function, bool]:
    """``parse_canonical_function`` through the process-wide memo.

    Returns ``(function, parsed)`` where ``parsed`` is True when this call
    actually parsed (a memo miss) — the parse counters tasks report stay
    meaningful across persistent-worker jobs.
    """
    key = (name, text)
    function = _PARSE_MEMO.get(key)
    if function is not None:
        return function, False
    function = parse_canonical_function(text, name=name)
    if len(_PARSE_MEMO) >= _PARSE_MEMO_CAP:
        _PARSE_MEMO.pop(next(iter(_PARSE_MEMO)))
    _PARSE_MEMO[key] = function
    return function, True


def _batch_registry(context: dict) -> Optional[MetricsRegistry]:
    """A fresh per-batch worker registry, or None when telemetry is off.

    Engines opt in via ``shared["collect_obs"]``.  Each batch records into
    its own registry and ships it back as a JSON snapshot under the result's
    ``"obs"`` key; the parent engine folds snapshots in batch order, so the
    merged parent registry is deterministic however workers were scheduled.

    ``shared["collect_events"]`` (set when the parent registry carries a
    flight recorder) additionally attaches a per-batch
    :class:`~repro.obs.EventLog`: worker decision events buffer into it,
    ride home inside the same ``"obs"`` snapshot, and fold parent-side in
    batch order — the exact contract the metric families follow.
    """
    if not context.get("collect_obs"):
        return None
    # The parent's tuned ladders (if any) ride along in shared state: both
    # sides must declare identical histogram bounds or the snapshot fold
    # refuses to merge — by design, never silently.
    registry = MetricsRegistry(
        bucket_overrides=context.get("bucket_overrides") or None)
    if context.get("collect_events"):
        attach_events(registry, True)
    return registry


def ship_function(function: Function) -> Tuple[str, str, str]:
    """``(name, digest, canonical text)`` of one function, ready to ship.

    Both fields are memoized per mutation epoch on the function itself, so
    shipping the same unchanged function to several phases serializes once.
    The text is rendered first so the digest reuses the memo instead of
    rendering a second, transient copy.
    """
    text = function.canonical_text()
    return (function.name, function.content_digest(), text)


# ---------------------------------------------------------------------------
# index_artifacts — fingerprints + MinHash signatures per digest batch
# ---------------------------------------------------------------------------

INDEX_ARTIFACTS_TASK = "index_artifacts"


def _artifacts_prepare(shared: dict) -> dict:
    strategy = SearchStrategy(**shared["strategy"])
    store_root = shared.get("store_root")
    return {
        "strategy": strategy,
        "store": ArtifactStore(store_root, read_only=True)
        if store_root is not None else None,
        "want_signatures": bool(shared.get("want_signatures")),
        "hash_params": _signature_hash_family(strategy),
        "config_key": signature_config_key(strategy),
        "collect_obs": bool(shared.get("collect_obs")),
        "collect_events": bool(shared.get("collect_events")),
        "bucket_overrides": shared.get("bucket_overrides"),
    }


def _artifacts_run(context: dict, batch: List[Tuple[str, str]]) -> dict:
    strategy = context["strategy"]
    store: Optional[ArtifactStore] = context["store"]
    want_signatures = context["want_signatures"]
    hash_params = context["hash_params"]
    config_key = context["config_key"]
    obs = _batch_registry(context)
    if obs is not None and store is not None:
        store.attach_metrics(obs)
    parsed = 0
    artifacts: Dict[str, dict] = {}
    with maybe_span(obs, f"worker.{INDEX_ARTIFACTS_TASK}"):
        for digest, text in batch:
            function: Optional[Function] = None
            fingerprint: Optional[Fingerprint] = None
            fingerprint_loaded = False
            if store is not None:
                payload = store.load(f"{ANALYSIS_KIND_PREFIX}fingerprint",
                                     digest)
                if payload is not None:
                    try:
                        fingerprint = _decode_fingerprint(payload)
                        fingerprint_loaded = True
                    except (KeyError, TypeError, ValueError):
                        store.note_invalid_payload()
            if fingerprint is None:
                function, was_parsed = cached_parse(text, digest)
                parsed += was_parsed
                fingerprint = Fingerprint.of(function)
            signature: Optional[List[int]] = None
            signature_loaded = False
            if want_signatures:
                if store is not None:
                    payload = store.load("minhash_signature",
                                         f"{digest}.{config_key}")
                    if payload is not None:
                        if valid_signature_payload(payload, len(hash_params)):
                            signature = list(payload)
                            signature_loaded = True
                        else:
                            store.note_invalid_payload()
                if signature is None:
                    if function is None:
                        function, was_parsed = cached_parse(text, digest)
                        parsed += was_parsed
                    signature = list(compute_minhash_signature(
                        function, fingerprint, strategy, hash_params))
            artifacts[digest] = {
                "fingerprint": _encode_fingerprint(fingerprint),
                "fingerprint_loaded": fingerprint_loaded,
                "signature": signature,
                "signature_loaded": signature_loaded,
            }
            if obs is not None and obs.events is not None:
                data = {"digest": digest,
                        "fingerprint": "artifact_store" if fingerprint_loaded
                        else "cold_compute"}
                if want_signatures:
                    data["signature"] = "artifact_store" if signature_loaded \
                        else "cold_compute"
                obs.events.emit("artifact", **data)
    result: dict = {"artifacts": artifacts}
    if obs is not None:
        if store is not None:
            store.attach_metrics(None)
        obs.counter(
            "repro_worker_functions_parsed_total",
            help="Functions reconstructed from canonical text in workers.",
            task=INDEX_ARTIFACTS_TASK).inc(parsed)
        result["obs"] = obs.snapshot()
    return result


register_task(INDEX_ARTIFACTS_TASK, _artifacts_prepare, _artifacts_run)


# ---------------------------------------------------------------------------
# candidates — batched candidates_for queries over a shipped population
# ---------------------------------------------------------------------------

CANDIDATES_TASK = "candidates"


class _ShippedFunction:
    """A parse-free stand-in for one indexed function.

    Candidate indexes only touch a function's name, instruction count,
    content digest and precomputed artifacts — never its body — so the query
    task indexes these shims instead of reconstructed IR.
    """

    __slots__ = ("name", "digest", "size")

    def __init__(self, name: str, digest: str, size: int) -> None:
        self.name = name
        self.digest = digest
        self.size = size

    def num_instructions(self) -> int:
        return self.size

    def content_digest(self) -> str:
        return self.digest

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<ShippedFunction @{self.name}>"


class _ShippedPopulation:
    """The module-shaped container a worker-side index is built over."""

    def __init__(self, functions: List[_ShippedFunction]) -> None:
        self._functions = functions

    def defined_functions(self) -> List[_ShippedFunction]:
        return list(self._functions)


def _candidates_prepare(shared: dict) -> dict:
    strategy = SearchStrategy(**shared["strategy"])
    shims: List[_ShippedFunction] = []
    precomputed: Dict[_ShippedFunction, dict] = {}
    for name, digest, counts, size, signature, probe_gaps in \
            shared["population"]:
        fingerprint = Fingerprint(tuple(counts), size)
        shim = _ShippedFunction(name, digest, size)
        shims.append(shim)
        artifact = {"fingerprint": fingerprint}
        if signature is not None:
            artifact["signature"] = tuple(signature)
        if probe_gaps is not None:
            # Shipped so the worker's multi-probe row order is bit-identical
            # to the parent's (shims carry no body to recompute gaps from).
            artifact["probe_gaps"] = tuple(probe_gaps)
        precomputed[shim] = artifact
    index = make_index(_ShippedPopulation(shims), strategy,
                       min_size=shared["min_size"], precomputed=precomputed)
    return {
        "index": index,
        "by_name": {shim.name: shim for shim in shims},
        "threshold": shared["threshold"],
        "collect_obs": bool(shared.get("collect_obs")),
        "collect_events": bool(shared.get("collect_events")),
        "bucket_overrides": shared.get("bucket_overrides"),
    }


def _candidates_run(context: dict, batch: List[str]) -> dict:
    index = context["index"]
    by_name = context["by_name"]
    threshold = context["threshold"]
    stats: SearchStats = index.stats
    before = (stats.queries, stats.candidates_scanned,
              stats.candidates_returned, stats.population_available)
    obs = _batch_registry(context)
    if obs is not None:
        index.attach_metrics(obs)
    answers: Dict[str, Tuple[List[Tuple[str, int, float]], bool]] = {}
    with maybe_span(obs, f"worker.{CANDIDATES_TASK}"):
        for name in batch:
            ranked = index.candidates_for(by_name[name], threshold)
            answers[name] = ([(candidate.function.name, candidate.distance,
                               candidate.similarity) for candidate in ranked],
                             index.last_query_used_fallback)
    result: dict = {
        "answers": answers,
        # Per-batch stats *delta*: the worker index accumulates across the
        # batches one worker serves, so absolute counters would double-count
        # when the parent merges every batch result.
        "stats": {
            "strategy": stats.strategy,
            "queries": stats.queries - before[0],
            "candidates_scanned": stats.candidates_scanned - before[1],
            "candidates_returned": stats.candidates_returned - before[2],
            "population_available": stats.population_available - before[3],
        },
    }
    if obs is not None:
        index.attach_metrics(None)
        result["obs"] = obs.snapshot()
    return result


register_task(CANDIDATES_TASK, _candidates_prepare, _candidates_run)


# ---------------------------------------------------------------------------
# score_pairs — alignment + profitability scoring of candidate pairs
# ---------------------------------------------------------------------------

SCORE_PAIRS_TASK = "score_pairs"


@dataclass(frozen=True)
class PairScore:
    """The deterministic scoring of one candidate pair.

    ``benefit`` is the cost model's *upper-bound* estimate: every aligned
    instruction pair can at best collapse to the cheaper of the two, the
    merged function keeps one function overhead, and both entry points pay a
    thunk.  The committed merge decision still requires generating the merged
    body — this score only ranks pairs, it never commits them.
    """

    first: str
    second: str
    matches: int
    dp_cells: int
    size_first: int
    size_second: int
    merged_estimate: int
    benefit: int
    profitable: bool


def score_alignment_pair(first: Function, second: Function, size_model,
                         thunk_overhead: int = 12, minimum_benefit: int = 1,
                         include_phis: bool = False) -> PairScore:
    """Align two functions and estimate the profitability of merging them.

    Pure in its inputs — the same pair scores identically in any process,
    which is what makes worker-side scoring interchangeable with parent-side
    scoring.
    """
    result = align(linearize(first, include_phis), linearize(second, include_phis))
    size_first = size_model.function_size(first)
    size_second = size_model.function_size(second)
    savings = size_model.function_overhead  # two prologues collapse into one
    for pair in result.pairs:
        if pair.is_match and not pair.first.is_label:
            savings += min(size_model.instruction_cost(pair.first.instruction),
                           size_model.instruction_cost(pair.second.instruction))
    merged_estimate = size_first + size_second - savings
    benefit = size_first + size_second - merged_estimate - 2 * thunk_overhead
    return PairScore(
        first=first.name, second=second.name,
        matches=result.matches, dp_cells=result.dp_cells,
        size_first=size_first, size_second=size_second,
        merged_estimate=merged_estimate, benefit=benefit,
        profitable=benefit >= minimum_benefit)


def _score_prepare(shared: dict) -> dict:
    return {
        "texts": shared["functions"],
        "cache": {},
        "size_model": get_target(shared["target"]),
        "thunk_overhead": shared["thunk_overhead"],
        "minimum_benefit": shared["minimum_benefit"],
        "include_phis": bool(shared.get("include_phis")),
    }


def _score_resolve(context: dict, name: str) -> Function:
    # Lazy reconstruction: a worker only parses the functions its own
    # batches actually score, never the whole shipped set.  The parse goes
    # through the process-wide memo, so a persistent worker scoring the
    # same (unchanged) function across service jobs parses it once.
    function = context["cache"].get(name)
    if function is None:
        function, _ = cached_parse(context["texts"][name], name)
        context["cache"][name] = function
    return function


def _score_run(context: dict, batch: List[Tuple[str, str]]) -> List[PairScore]:
    size_model = context["size_model"]
    return [score_alignment_pair(_score_resolve(context, first),
                                 _score_resolve(context, second),
                                 size_model,
                                 thunk_overhead=context["thunk_overhead"],
                                 minimum_benefit=context["minimum_benefit"],
                                 include_phis=context["include_phis"])
            for first, second in batch]


register_task(SCORE_PAIRS_TASK, _score_prepare, _score_run)
