"""Counters of one parallel execution engine (or a merged set of them).

Every :class:`~repro.parallel.engine.ParallelEngine` owns a
:class:`ParallelStats` and records what crossed the process boundary: how many
functions were shipped (serialized to canonical text), how many artifacts the
workers computed versus loaded from the shared read-only store, how many
queries were answered ahead of time and how many of those the serial merge
loop actually consumed before index mutations invalidated the rest.

Wall-clock fields are recorded for reporting but — like every other stats
object in the harness — are never part of a merge-report digest, so parallel
and serial runs stay bit-comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass
class ParallelStats:
    """Aggregate counters of one worker-pool engine."""

    backend: str = ""
    workers: int = 0
    #: Worker-pool task batches dispatched (a serial backend dispatches too —
    #: inline — so the counter is comparable across backends).
    batches: int = 0
    #: Unique canonical texts serialized and shipped to workers, summed over
    #: phases (clones dedup by digest; the candidate-prefetch phase ships
    #: only fingerprint/signature tuples and counts nothing here).  The
    #: serial backend ships nothing — it reads live IR.
    functions_shipped: int = 0
    #: Index artifacts (fingerprints / MinHash signatures) computed by
    #: workers versus loaded from the shared read-only artifact store.
    fingerprints_computed: int = 0
    fingerprints_loaded: int = 0
    signatures_computed: int = 0
    signatures_loaded: int = 0
    #: ``candidates_for`` queries answered ahead of the merge loop, and how
    #: many of those answers the loop consumed before an index mutation
    #: invalidated the remainder.
    queries_prefetched: int = 0
    prefetched_used: int = 0
    #: Candidate pairs scored (alignment + profitability) by workers.
    pairs_scored: int = 0
    #: Times the pool's worker processes were (re)spawned.  An ephemeral
    #: process pool spawns once per dispatched phase; a persistent pool
    #: (``ParallelConfig.persistent``) spawns once per lifetime — the
    #: resident service's acceptance bar reads this.
    pool_spawns: int = 0
    #: Wall-clock spent serializing/reconstructing and inside worker tasks.
    ship_seconds: float = 0.0
    worker_seconds: float = 0.0

    def merge(self, other: "ParallelStats") -> "ParallelStats":
        """Fold ``other``'s counters into this one (in place) and return self."""
        if not self.backend:
            self.backend = other.backend
        elif other.backend and other.backend != self.backend:
            self.backend = "mixed"
        self.workers = max(self.workers, other.workers)
        self.batches += other.batches
        self.functions_shipped += other.functions_shipped
        self.fingerprints_computed += other.fingerprints_computed
        self.fingerprints_loaded += other.fingerprints_loaded
        self.signatures_computed += other.signatures_computed
        self.signatures_loaded += other.signatures_loaded
        self.queries_prefetched += other.queries_prefetched
        self.prefetched_used += other.prefetched_used
        self.pairs_scored += other.pairs_scored
        self.pool_spawns = max(self.pool_spawns, other.pool_spawns)
        self.ship_seconds += other.ship_seconds
        self.worker_seconds += other.worker_seconds
        return self

    @property
    def prefetch_hit_rate(self) -> float:
        """Fraction of prefetched answers the merge loop actually used."""
        if self.queries_prefetched == 0:
            return 0.0
        return self.prefetched_used / self.queries_prefetched

    def as_dict(self) -> Dict[str, Any]:
        """A flat summary suitable for reporting / ``extra_info`` dumps."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "batches": self.batches,
            "functions_shipped": self.functions_shipped,
            "fingerprints_computed": self.fingerprints_computed,
            "fingerprints_loaded": self.fingerprints_loaded,
            "signatures_computed": self.signatures_computed,
            "signatures_loaded": self.signatures_loaded,
            "queries_prefetched": self.queries_prefetched,
            "prefetched_used": self.prefetched_used,
            "prefetch_hit_rate": self.prefetch_hit_rate,
            "pairs_scored": self.pairs_scored,
            "pool_spawns": self.pool_spawns,
            "ship_seconds": self.ship_seconds,
            "worker_seconds": self.worker_seconds,
        }
