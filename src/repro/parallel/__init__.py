"""Worker-pool execution engine for the read-only merge-pipeline phases.

The merge pipeline's hot path — candidate-index construction, batched
``candidates_for`` queries and alignment/profitability scoring of candidate
pairs — is read-only and embarrassingly parallel, while codegen and module
mutation must stay serial and ordered.  This subsystem splits exactly along
that line:

* :class:`WorkerPool` — ``serial`` and ``process`` backends behind a
  registry (:func:`register_backend` / :func:`make_pool`), running named
  :mod:`~repro.parallel.tasks` over ordered batches.
* :class:`ParallelEngine` — the parent-side orchestration: ships functions
  as their canonical, digest-stable serialization, primes analysis managers
  and artifact stores with worker results (workers open the shared store
  read-only; the parent is the only writer), and merges per-worker stats
  into the run's existing counters.
* :class:`ParallelStats` — what crossed the process boundary and what it
  saved.

Thread ``parallel_workers=N`` through
:func:`repro.harness.pipeline.run_pipeline` (or
:class:`repro.merge.pass_manager.MergePassOptions`) to turn it on; merge
reports are bit-identical across backends.  See ``docs/parallel.md`` for the
backend matrix and the determinism contract.
"""

from .engine import ParallelEngine, PrefetchedAnswer
from .pool import (
    ParallelConfig,
    PersistentProcessPool,
    ProcessPool,
    SerialPool,
    WorkerPool,
    WorkerTaskError,
    available_backends,
    make_batches,
    make_pool,
    register_backend,
    resolve_config,
)
from .stats import ParallelStats
from .tasks import (
    PairScore,
    get_task,
    register_task,
    score_alignment_pair,
    ship_function,
)

__all__ = [
    "PairScore",
    "ParallelConfig",
    "ParallelEngine",
    "ParallelStats",
    "PersistentProcessPool",
    "PrefetchedAnswer",
    "ProcessPool",
    "SerialPool",
    "WorkerPool",
    "WorkerTaskError",
    "available_backends",
    "get_task",
    "make_batches",
    "make_pool",
    "register_backend",
    "register_task",
    "resolve_config",
    "score_alignment_pair",
    "ship_function",
]
