"""Worker pools: where "run this task over these batches" lives.

A :class:`WorkerPool` executes registered *tasks* (see
:mod:`repro.parallel.tasks`) over batches of work items.  Tasks are addressed
by name — never by pickled callables — so every backend, in-process or not,
resolves the same registered implementation.  Two backends ship, selected
through a registry exactly like ``repro.search`` strategies:

* ``serial`` — the in-process reference: tasks run inline, in order, with no
  serialization.  Engines treat a serial pool as "stay on the live IR", so a
  serial-backed run is the exact baseline a process-backed run is compared
  against.
* ``process`` — a ``multiprocessing`` pool: the task's shared payload is
  delivered to each worker once (via the pool initializer), batches are
  mapped in order, and results come back as picklable plain data.

Third-party backends (threads under free-threaded builds, remote executors)
can be plugged in with :func:`register_backend`.
"""

from __future__ import annotations

import multiprocessing
import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

#: Factory signature every registered backend must satisfy.
PoolFactory = Callable[["ParallelConfig"], "WorkerPool"]

_REGISTRY: Dict[str, PoolFactory] = {}


@dataclass(frozen=True)
class ParallelConfig:
    """Configuration of one worker-pool engine."""

    #: Registered backend name: ``serial`` or ``process``.
    backend: str = "serial"
    #: Worker processes; 0 picks the host's CPU count.
    workers: int = 0
    #: Target batches per worker: more batches smooth load imbalance between
    #: cheap and expensive items, fewer amortise per-batch dispatch overhead.
    batches_per_worker: int = 4
    #: ``multiprocessing`` start method; None picks ``fork`` where available
    #: (cheapest, and tasks are pure so inherited state is harmless) and the
    #: platform default elsewhere.
    start_method: Optional[str] = None
    #: Keep worker processes alive across ``run`` calls (and across jobs of
    #: a resident service).  The default per-call teardown stays the
    #: batch-script behaviour; persistent pools are what the long-lived
    #: :mod:`repro.service` daemon runs on — workers are spawned exactly
    #: once and retain their parsed-function caches between phases.
    persistent: bool = False

    def resolved_workers(self) -> int:
        if self.workers > 0:
            return self.workers
        return max(1, os.cpu_count() or 1)

    def with_options(self, **kwargs) -> "ParallelConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **kwargs)


def register_backend(name: str, factory: PoolFactory) -> None:
    """Register (or override) a backend name -> pool factory binding."""
    _REGISTRY[name] = factory


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_config(config: Union[str, ParallelConfig, None]) -> ParallelConfig:
    """Normalise a name / config / None into a validated :class:`ParallelConfig`."""
    if config is None:
        config = ParallelConfig()
    elif isinstance(config, str):
        config = ParallelConfig(backend=config)
    if config.backend not in _REGISTRY:
        raise ValueError(
            f"unknown parallel backend {config.backend!r}; "
            f"available: {', '.join(available_backends())}")
    return config


def make_pool(config: Union[str, ParallelConfig, None] = None) -> "WorkerPool":
    """Build a :class:`WorkerPool` for ``config`` (name, config or None)."""
    resolved = resolve_config(config)
    return _REGISTRY[resolved.backend](resolved)


def make_batches(items: Sequence[Any], workers: int,
                 batches_per_worker: int = 4) -> List[List[Any]]:
    """Split ``items`` into contiguous batches sized for ``workers``.

    Deterministic in the input order; aims for ``workers * batches_per_worker``
    batches so stragglers can be balanced without drowning in dispatch
    overhead.  Returns no empty batches (and nothing for no items).
    """
    items = list(items)
    if not items:
        return []
    target = max(1, workers) * max(1, batches_per_worker)
    size = max(1, -(-len(items) // target))
    return [items[start:start + size] for start in range(0, len(items), size)]


class WorkerPool(ABC):
    """Executes named tasks over batches; see :mod:`repro.parallel.tasks`."""

    #: Registered backend name of this pool.
    name = "abstract"
    #: True when tasks run in this process on live objects — engines then
    #: skip serialization entirely and this pool is the exact serial baseline.
    inline = False

    def __init__(self, config: ParallelConfig) -> None:
        self.config = config
        self.workers = config.resolved_workers()
        #: Times a set of worker processes was (re)started.  Serial pools
        #: never spawn; an ephemeral process pool spawns once per ``run``
        #: call; a persistent pool spawns once per lifetime (plus once per
        #: recovery after a worker crash) — the number the resident
        #: service's spawned-exactly-once acceptance bar reads.
        self.spawns = 0

    @abstractmethod
    def run(self, task_name: str, shared: Any, batches: Sequence[Any]) -> List[Any]:
        """Run task ``task_name`` over ``batches``, returning per-batch results
        in batch order.  ``shared`` is delivered to each worker exactly once."""

    def close(self) -> None:
        """Release pool resources.

        Idempotent and exception-safe: closing twice, or closing after a
        worker crashed, must never raise — a service draining on the way
        down cannot afford a shutdown path that throws.
        """

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialPool(WorkerPool):
    """In-process execution, in order — the reference backend."""

    name = "serial"
    inline = True

    def run(self, task_name: str, shared: Any, batches: Sequence[Any]) -> List[Any]:
        from .tasks import get_task

        task = get_task(task_name)
        context = task.prepare(shared)
        return [task.run(context, batch) for batch in batches]


# Per-worker-process task state, installed by the pool initializer so the
# shared payload is deserialized once per worker rather than once per batch.
_WORKER_STATE: Dict[str, Any] = {}


def _worker_initializer(task_name: str, shared: Any) -> None:
    from .tasks import get_task

    task = get_task(task_name)
    _WORKER_STATE["run"] = task.run
    _WORKER_STATE["context"] = task.prepare(shared)


def _worker_run(batch: Any) -> Any:
    return _WORKER_STATE["run"](_WORKER_STATE["context"], batch)


class ProcessPool(WorkerPool):
    """A ``multiprocessing`` pool of worker processes.

    One OS pool is created per :meth:`run` call: the initializer hands every
    worker the task's shared payload, batches are mapped in order (results
    are position-stable regardless of which worker finishes first), and the
    pool is torn down before returning, so no state leaks between tasks.
    """

    name = "process"

    def _context(self):
        method = self.config.start_method
        if method is None:
            method = "fork" if "fork" in multiprocessing.get_all_start_methods() \
                else None
        return multiprocessing.get_context(method)

    def run(self, task_name: str, shared: Any, batches: Sequence[Any]) -> List[Any]:
        batches = list(batches)
        if not batches:
            return []
        processes = max(1, min(self.workers, len(batches)))
        context = self._context()
        self.spawns += 1
        with context.Pool(processes=processes,
                          initializer=_worker_initializer,
                          initargs=(task_name, shared)) as pool:
            return pool.map(_worker_run, batches, chunksize=1)


class WorkerTaskError(RuntimeError):
    """A task raised inside a persistent worker (the worker itself survives)."""


def _persistent_worker_loop(conn) -> None:
    """One persistent worker: serve ``prepare``/``run`` messages until told
    to stop (or the parent's end of the pipe goes away).

    The worker owns its task context between ``prepare`` messages, so
    everything a task memoizes — parsed functions, open read-only stores,
    analysis scratch — survives from one job to the next.  A task exception
    is reported back as an ``error`` message and the worker keeps serving;
    only a torn pipe or an explicit ``stop`` ends the loop.
    """
    from .tasks import get_task

    run = context = None
    prepare_error: Optional[str] = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "stop":
            break
        try:
            if kind == "prepare":
                task = get_task(message[1])
                run, context = task.run, task.prepare(message[2])
                prepare_error = None
            elif kind == "run":
                if run is None:
                    raise RuntimeError(prepare_error
                                       or "no task prepared in this worker")
                conn.send(("result", message[1], run(context, message[2])))
        except (OSError, BrokenPipeError):
            break
        except BaseException as exc:  # noqa: BLE001 - report, stay alive
            detail = f"{type(exc).__name__}: {exc}"
            if kind == "prepare":
                run = context = None
                prepare_error = detail
            else:
                try:
                    conn.send(("error", message[1], detail))
                except (OSError, BrokenPipeError):
                    break
    try:
        conn.close()
    except OSError:
        pass


class PersistentProcessPool(WorkerPool):
    """A long-lived ``multiprocessing`` pool: workers spawned once, reused.

    The ephemeral :class:`ProcessPool` tears its OS pool down after every
    ``run`` call — the right hygiene for batch scripts, but a resident
    service would re-pay process spawn and every worker-side cache on each
    of a job's phases.  This pool keeps one set of worker processes alive
    for its whole lifetime: ``run`` sends each active worker the task's
    shared payload once, round-robins the batches over per-worker pipes,
    and reassembles results in batch order.

    Failure containment: a task exception inside a worker is re-raised
    here as :class:`WorkerTaskError` while the workers stay up; a *dead*
    worker (killed, crashed interpreter) tears the current generation down
    and the next ``run`` respawns a fresh one (``spawns`` counts the
    generations).  ``close`` is idempotent and never raises, whatever
    state the workers are in.
    """

    name = "process"

    def __init__(self, config: ParallelConfig) -> None:
        super().__init__(config)
        self._procs: List[Any] = []
        self._pipes: List[Any] = []

    def _context(self):
        method = self.config.start_method
        if method is None:
            method = "fork" if "fork" in multiprocessing.get_all_start_methods() \
                else None
        return multiprocessing.get_context(method)

    def _ensure_workers(self) -> None:
        if self._procs and all(proc.is_alive() for proc in self._procs):
            return
        self.close()
        context = self._context()
        for _ in range(self.workers):
            parent_end, child_end = context.Pipe()
            process = context.Process(target=_persistent_worker_loop,
                                      args=(child_end,), daemon=True)
            process.start()
            child_end.close()
            self._procs.append(process)
            self._pipes.append(parent_end)
        self.spawns += 1

    def run(self, task_name: str, shared: Any, batches: Sequence[Any]) -> List[Any]:
        batches = list(batches)
        if not batches:
            return []
        self._ensure_workers()
        active = max(1, min(self.workers, len(batches)))
        assignments: List[List[Tuple[int, Any]]] = [[] for _ in range(active)]
        for index, batch in enumerate(batches):
            assignments[index % active].append((index, batch))
        results: List[Any] = [None] * len(batches)
        try:
            for pipe in self._pipes[:active]:
                pipe.send(("prepare", task_name, shared))
            for pipe, assigned in zip(self._pipes, assignments):
                for index, batch in assigned:
                    pipe.send(("run", index, batch))
            failure: Optional[str] = None
            for pipe, assigned in zip(self._pipes, assignments):
                for _ in assigned:
                    kind, index, payload = pipe.recv()
                    if kind == "error":
                        # Keep draining this worker's remaining results so
                        # the pipes stay message-aligned for the next run.
                        failure = failure or payload
                    else:
                        results[index] = payload
            if failure is not None:
                raise WorkerTaskError(failure)
        except (EOFError, OSError, BrokenPipeError) as exc:
            # A worker died mid-conversation: the pipes are no longer
            # message-aligned, so retire this generation.  The next run
            # respawns workers; callers see one failed task, not a
            # permanently poisoned pool.
            self.close()
            raise WorkerTaskError(
                f"persistent worker died mid-task: {exc!r}") from exc
        return results

    def close(self) -> None:
        for pipe in self._pipes:
            try:
                pipe.send(("stop",))
            except (OSError, BrokenPipeError, ValueError):
                pass
        for pipe in self._pipes:
            try:
                pipe.close()
            except OSError:
                pass
        for process in self._procs:
            try:
                process.join(timeout=2.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=2.0)
            except (OSError, ValueError, AssertionError):
                pass
        self._procs = []
        self._pipes = []

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass


def _make_process_pool(config: ParallelConfig) -> WorkerPool:
    if config.persistent:
        return PersistentProcessPool(config)
    return ProcessPool(config)


register_backend(SerialPool.name, SerialPool)
register_backend(ProcessPool.name, _make_process_pool)
