"""Worker pools: where "run this task over these batches" lives.

A :class:`WorkerPool` executes registered *tasks* (see
:mod:`repro.parallel.tasks`) over batches of work items.  Tasks are addressed
by name — never by pickled callables — so every backend, in-process or not,
resolves the same registered implementation.  Two backends ship, selected
through a registry exactly like ``repro.search`` strategies:

* ``serial`` — the in-process reference: tasks run inline, in order, with no
  serialization.  Engines treat a serial pool as "stay on the live IR", so a
  serial-backed run is the exact baseline a process-backed run is compared
  against.
* ``process`` — a ``multiprocessing`` pool: the task's shared payload is
  delivered to each worker once (via the pool initializer), batches are
  mapped in order, and results come back as picklable plain data.

Third-party backends (threads under free-threaded builds, remote executors)
can be plugged in with :func:`register_backend`.
"""

from __future__ import annotations

import multiprocessing
import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

#: Factory signature every registered backend must satisfy.
PoolFactory = Callable[["ParallelConfig"], "WorkerPool"]

_REGISTRY: Dict[str, PoolFactory] = {}


@dataclass(frozen=True)
class ParallelConfig:
    """Configuration of one worker-pool engine."""

    #: Registered backend name: ``serial`` or ``process``.
    backend: str = "serial"
    #: Worker processes; 0 picks the host's CPU count.
    workers: int = 0
    #: Target batches per worker: more batches smooth load imbalance between
    #: cheap and expensive items, fewer amortise per-batch dispatch overhead.
    batches_per_worker: int = 4
    #: ``multiprocessing`` start method; None picks ``fork`` where available
    #: (cheapest, and tasks are pure so inherited state is harmless) and the
    #: platform default elsewhere.
    start_method: Optional[str] = None

    def resolved_workers(self) -> int:
        if self.workers > 0:
            return self.workers
        return max(1, os.cpu_count() or 1)

    def with_options(self, **kwargs) -> "ParallelConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **kwargs)


def register_backend(name: str, factory: PoolFactory) -> None:
    """Register (or override) a backend name -> pool factory binding."""
    _REGISTRY[name] = factory


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_config(config: Union[str, ParallelConfig, None]) -> ParallelConfig:
    """Normalise a name / config / None into a validated :class:`ParallelConfig`."""
    if config is None:
        config = ParallelConfig()
    elif isinstance(config, str):
        config = ParallelConfig(backend=config)
    if config.backend not in _REGISTRY:
        raise ValueError(
            f"unknown parallel backend {config.backend!r}; "
            f"available: {', '.join(available_backends())}")
    return config


def make_pool(config: Union[str, ParallelConfig, None] = None) -> "WorkerPool":
    """Build a :class:`WorkerPool` for ``config`` (name, config or None)."""
    resolved = resolve_config(config)
    return _REGISTRY[resolved.backend](resolved)


def make_batches(items: Sequence[Any], workers: int,
                 batches_per_worker: int = 4) -> List[List[Any]]:
    """Split ``items`` into contiguous batches sized for ``workers``.

    Deterministic in the input order; aims for ``workers * batches_per_worker``
    batches so stragglers can be balanced without drowning in dispatch
    overhead.  Returns no empty batches (and nothing for no items).
    """
    items = list(items)
    if not items:
        return []
    target = max(1, workers) * max(1, batches_per_worker)
    size = max(1, -(-len(items) // target))
    return [items[start:start + size] for start in range(0, len(items), size)]


class WorkerPool(ABC):
    """Executes named tasks over batches; see :mod:`repro.parallel.tasks`."""

    #: Registered backend name of this pool.
    name = "abstract"
    #: True when tasks run in this process on live objects — engines then
    #: skip serialization entirely and this pool is the exact serial baseline.
    inline = False

    def __init__(self, config: ParallelConfig) -> None:
        self.config = config
        self.workers = config.resolved_workers()

    @abstractmethod
    def run(self, task_name: str, shared: Any, batches: Sequence[Any]) -> List[Any]:
        """Run task ``task_name`` over ``batches``, returning per-batch results
        in batch order.  ``shared`` is delivered to each worker exactly once."""

    def close(self) -> None:
        """Release pool resources (idempotent)."""

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialPool(WorkerPool):
    """In-process execution, in order — the reference backend."""

    name = "serial"
    inline = True

    def run(self, task_name: str, shared: Any, batches: Sequence[Any]) -> List[Any]:
        from .tasks import get_task

        task = get_task(task_name)
        context = task.prepare(shared)
        return [task.run(context, batch) for batch in batches]


# Per-worker-process task state, installed by the pool initializer so the
# shared payload is deserialized once per worker rather than once per batch.
_WORKER_STATE: Dict[str, Any] = {}


def _worker_initializer(task_name: str, shared: Any) -> None:
    from .tasks import get_task

    task = get_task(task_name)
    _WORKER_STATE["run"] = task.run
    _WORKER_STATE["context"] = task.prepare(shared)


def _worker_run(batch: Any) -> Any:
    return _WORKER_STATE["run"](_WORKER_STATE["context"], batch)


class ProcessPool(WorkerPool):
    """A ``multiprocessing`` pool of worker processes.

    One OS pool is created per :meth:`run` call: the initializer hands every
    worker the task's shared payload, batches are mapped in order (results
    are position-stable regardless of which worker finishes first), and the
    pool is torn down before returning, so no state leaks between tasks.
    """

    name = "process"

    def _context(self):
        method = self.config.start_method
        if method is None:
            method = "fork" if "fork" in multiprocessing.get_all_start_methods() \
                else None
        return multiprocessing.get_context(method)

    def run(self, task_name: str, shared: Any, batches: Sequence[Any]) -> List[Any]:
        batches = list(batches)
        if not batches:
            return []
        processes = max(1, min(self.workers, len(batches)))
        context = self._context()
        with context.Pool(processes=processes,
                          initializer=_worker_initializer,
                          initargs=(task_name, shared)) as pool:
            return pool.map(_worker_run, batches, chunksize=1)


register_backend(SerialPool.name, SerialPool)
register_backend(ProcessPool.name, ProcessPool)
