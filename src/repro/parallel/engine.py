"""The parent-side orchestration of the worker pool.

:class:`ParallelEngine` wraps a :class:`~repro.parallel.pool.WorkerPool` and
exposes the three read-only hot phases of the merge pipeline as batch
operations:

* :meth:`precompute_index_artifacts` — fingerprints + MinHash signatures,
  computed in digest-sharded batches and handed back as a ``precomputed``
  map for :func:`repro.search.make_index` (plus primed into the shared
  analysis manager and published to the artifact store — the parent is the
  store's only writer; workers read it read-only).
* :meth:`prefetch_candidates` — batched ``candidates_for`` queries answered
  ahead of the serial merge loop.
* :meth:`score_pairs` — alignment + cost-model profitability scoring of
  candidate pairs.

Determinism contract: every phase returns exactly what the equivalent serial
computation would produce — worker results are keyed by content digest and
function name, ranking keys are value-based, and all hashing is seeded — so a
``process``-backed run and a ``serial`` run are bit-identical apart from
wall-clock and stats fields that never enter a report digest.  A serial
(``inline``) pool short-circuits the ship/reconstruct round trip entirely and
is the exact baseline the process backend is measured against.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.fingerprint import RankedCandidate
from ..analysis.manager import FINGERPRINT, AnalysisStats
from ..analysis.size_model import TARGETS
from ..persist.cache import PersistentAnalysisCache, _decode_fingerprint
from ..persist.store import ArtifactStore, StoreStats
from ..search.adaptive import choose_adaptive_strategy
from ..search.index import CandidateIndex, signature_config_key
from ..search.stats import SearchStats
from ..search.strategy import SearchStrategy, resolve_strategy
from .pool import ParallelConfig, WorkerPool, make_batches, make_pool
from .stats import ParallelStats
from .tasks import (
    CANDIDATES_TASK,
    INDEX_ARTIFACTS_TASK,
    SCORE_PAIRS_TASK,
    PairScore,
    score_alignment_pair,
    ship_function,
)


@dataclass
class PrefetchedAnswer:
    """One query's prefetched result plus how the index derived it.

    ``used_fallback`` records whether the answer came through the index's
    full-scan fallback — such an answer depends on the fallback staying
    armed, which the merge loop's validity check must account for once the
    index starts mutating.
    """

    candidates: List[RankedCandidate]
    used_fallback: bool = False


class ParallelEngine:
    """Drives the read-only pipeline phases through a worker pool."""

    def __init__(self, config: Union[str, ParallelConfig, None] = None,
                 pool: Optional[WorkerPool] = None,
                 stats: Optional[ParallelStats] = None,
                 metrics=None) -> None:
        self.pool = pool if pool is not None else make_pool(config)
        self.stats = stats or ParallelStats(backend=self.pool.name,
                                            workers=self.pool.workers)
        #: Optional repro.obs.MetricsRegistry.  When attached, worker tasks
        #: build a registry per batch (timers, parse counters, a
        #: ``worker.<task>`` span), ship it back as a JSON snapshot in their
        #: result, and :meth:`_run` folds every snapshot into this registry
        #: in batch order — the per-worker registries merge exactly as
        #: deterministically as the per-worker stats dataclasses do.
        self.metrics = metrics
        # Functions whose canonical text was memoized for shipping; the memo
        # is released on close() so a run never pins whole-module IR text
        # beyond the engine's lifetime.
        self._shipped: set = set()

    def _ship(self, function) -> Tuple[str, str, str]:
        self._shipped.add(function)
        return ship_function(function)

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        self.pool.close()
        for function in self._shipped:
            function.release_canonical_text()
        self._shipped.clear()

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- internals
    def _run(self, task: str, shared, batches) -> list:
        self.stats.batches += len(batches)
        started = time.perf_counter()
        results = self.pool.run(task, shared, batches)
        self.stats.worker_seconds += time.perf_counter() - started
        self.stats.pool_spawns = self.pool.spawns
        if self.metrics is not None:
            # Batch results arrive in batch order whatever the completion
            # order, so folding the shipped snapshots here is deterministic.
            for result in results:
                snapshot = result.get("obs") if isinstance(result, dict) \
                    else None
                if snapshot:
                    self.metrics.merge_snapshot(snapshot)
        return results

    @staticmethod
    def effective_strategy(module, strategy, min_size: int) -> SearchStrategy:
        """The concrete strategy a run will use (``adaptive`` resolved)."""
        resolved = resolve_strategy(strategy)
        if resolved.name == "adaptive":
            resolved = resolved.with_options(
                name=choose_adaptive_strategy(module, min_size, resolved))
        return resolved

    # ---------------------------------------------------- phase A: artifacts
    def precompute_index_artifacts(self, module, strategy,
                                   min_size: int = 2,
                                   manager=None,
                                   store: Optional[ArtifactStore] = None
                                   ) -> Dict[object, dict]:
        """Index artifacts for ``module``, computed in digest-sharded batches.

        Returns the ``precomputed`` map :func:`repro.search.make_index`
        consumes.  On the way, worker-computed fingerprints are primed into
        ``manager`` and freshly computed artifacts are published to ``store``
        (worker loads of already-stored artifacts are counted but never
        rewritten).  An inline (serial) pool returns an empty map: the index
        then derives everything itself, which *is* the serial baseline.
        """
        effective = self.effective_strategy(module, strategy, min_size)
        if self.pool.inline:
            return {}
        functions = [function for function in module.defined_functions()
                     if function.num_instructions() >= min_size]
        if not functions:
            return {}
        want_signatures = effective.name == "minhash_lsh"

        started = time.perf_counter()
        by_digest: Dict[str, list] = {}
        texts: Dict[str, str] = {}
        for function in functions:
            name, digest, text = self._ship(function)
            by_digest.setdefault(digest, []).append(function)
            texts[digest] = text
        # Digest sharding: batches are formed over the sorted unique digests,
        # so the work split is deterministic in content alone (clones share a
        # digest and are derived exactly once, whatever the module order).
        digests = sorted(by_digest)
        self.stats.ship_seconds += time.perf_counter() - started
        self.stats.functions_shipped += len(digests)

        shared = {
            "strategy": asdict(effective),
            "store_root": str(store.root) if store is not None else None,
            "want_signatures": want_signatures,
            "collect_obs": self.metrics is not None,
            "collect_events": self.metrics is not None
            and getattr(self.metrics, "events", None) is not None,
            # Worker-batch registries must declare the same histogram
            # ladders as the parent — mismatched bounds refuse to merge.
            "bucket_overrides": self.metrics.bucket_overrides
            if self.metrics is not None else None,
        }
        batches = make_batches([(digest, texts[digest]) for digest in digests],
                               self.pool.workers, self.config_batches())
        results = self._run(INDEX_ARTIFACTS_TASK, shared, batches)

        precomputed: Dict[object, dict] = {}
        config_key = signature_config_key(effective) if want_signatures else None
        persistent = PersistentAnalysisCache(store) if store is not None else None
        worker_store = StoreStats()
        fingerprints_loaded = fingerprints_computed = 0
        for result in results:
            for digest, payload in result["artifacts"].items():
                fingerprint = _decode_fingerprint(payload["fingerprint"])
                signature = payload["signature"]
                artifact: dict = {"fingerprint": fingerprint}
                if signature is not None:
                    artifact["signature"] = tuple(signature)
                if payload["fingerprint_loaded"]:
                    fingerprints_loaded += 1
                    worker_store.hits += 1
                else:
                    fingerprints_computed += 1
                    if store is not None:
                        worker_store.misses += 1
                if signature is not None:
                    if payload["signature_loaded"]:
                        self.stats.signatures_loaded += 1
                        worker_store.hits += 1
                    else:
                        self.stats.signatures_computed += 1
                        if store is not None:
                            worker_store.misses += 1
                owners = by_digest[digest]
                for function in owners:
                    precomputed[function] = artifact
                    if manager is not None:
                        manager.prime(FINGERPRINT, function, fingerprint)
                # Publish what workers had to compute; the parent is the
                # store's only writer.
                if store is not None:
                    anchor = owners[0]
                    if not payload["fingerprint_loaded"] and persistent is not None:
                        persistent.save("fingerprint", anchor, fingerprint)
                    if signature is not None and not payload["signature_loaded"]:
                        store.store("minhash_signature",
                                    f"{digest}.{config_key}", list(signature))
        self.stats.fingerprints_loaded += fingerprints_loaded
        self.stats.fingerprints_computed += fingerprints_computed
        if store is not None:
            # Fold the workers' read-only store traffic into the parent's
            # counters, so persist stats reflect the whole run.
            store.stats.merge(worker_store)
        if manager is not None:
            manager.stats.merge(AnalysisStats(
                hits=fingerprints_loaded,
                misses=fingerprints_computed,
                computed_by_analysis={"fingerprint": fingerprints_computed}
                if fingerprints_computed else {}))
        return precomputed

    def config_batches(self) -> int:
        return getattr(self.pool.config, "batches_per_worker", 4)

    # ------------------------------------------------------ phase B: queries
    def prefetch_candidates(self, index: CandidateIndex,
                            queries: Sequence,
                            threshold: int) -> Dict[object, PrefetchedAnswer]:
        """Answer ``candidates_for`` for every query ahead of the serial loop.

        Answers are exactly what ``index.candidates_for(function, threshold)``
        would return *right now* (no exclusions, current population); once
        the merge loop starts mutating the index, each answer is only used
        while provably still exact (see ``prefetch_answer_valid``), for
        which the answer records whether it came through the full-scan
        fallback.  Worker-side query stats are merged into ``index.stats``.
        """
        queries = [function for function in queries
                   if function in index.fingerprints]
        if not queries:
            return {}
        self.stats.queries_prefetched += len(queries)
        if self.pool.inline:
            answers = {}
            for function in queries:
                candidates = index.candidates_for(function, threshold)
                answers[function] = PrefetchedAnswer(
                    candidates, index.last_query_used_fallback)
            return answers

        started = time.perf_counter()
        population = []
        for function, fingerprint in index.fingerprints.items():
            artifact = index.export_artifacts(function)
            signature = artifact.get("signature")
            probe_gaps = artifact.get("probe_gaps")
            population.append((function.name, function.content_digest(),
                               list(fingerprint.counts), fingerprint.size,
                               list(signature) if signature is not None else None,
                               list(probe_gaps) if probe_gaps is not None
                               else None))
        by_name = {function.name: function for function in index.fingerprints}
        self.stats.ship_seconds += time.perf_counter() - started
        # Not counted as functions_shipped: queries ship fingerprint and
        # signature tuples, never canonical texts.

        shared = {
            "strategy": asdict(index.strategy),
            "min_size": index.min_size,
            "threshold": threshold,
            "population": population,
            "collect_obs": self.metrics is not None,
            "collect_events": self.metrics is not None
            and getattr(self.metrics, "events", None) is not None,
            "bucket_overrides": self.metrics.bucket_overrides
            if self.metrics is not None else None,
        }
        batches = make_batches([function.name for function in queries],
                               self.pool.workers, self.config_batches())
        results = self._run(CANDIDATES_TASK, shared, batches)

        answers: Dict[object, PrefetchedAnswer] = {}
        for result in results:
            for name, (ranked, used_fallback) in result["answers"].items():
                answers[by_name[name]] = PrefetchedAnswer(
                    [RankedCandidate(by_name[candidate], distance, similarity)
                     for candidate, distance, similarity in ranked],
                    used_fallback)
            index.stats.merge(SearchStats(**result["stats"]))
        return answers

    # ------------------------------------------------------ phase C: scoring
    def score_pairs(self, pairs: Sequence[Tuple[object, object]], size_model,
                    thunk_overhead: int = 12, minimum_benefit: int = 1,
                    include_phis: bool = False) -> List[PairScore]:
        """Alignment + profitability scores for candidate pairs, in order."""
        pairs = list(pairs)
        if not pairs:
            return []
        self.stats.pairs_scored += len(pairs)
        # Workers resolve size models by registered target name; a custom
        # model has no cross-process identity, so score it inline.
        if self.pool.inline or TARGETS.get(size_model.name) is not size_model:
            return [score_alignment_pair(first, second, size_model,
                                         thunk_overhead=thunk_overhead,
                                         minimum_benefit=minimum_benefit,
                                         include_phis=include_phis)
                    for first, second in pairs]

        started = time.perf_counter()
        texts: Dict[str, str] = {}
        for first, second in pairs:
            for function in (first, second):
                if function.name not in texts:
                    _, _, text = self._ship(function)
                    texts[function.name] = text
        # Cluster-local sharding: pairs sharing functions (clone families)
        # land in the same worker's single batch, so each family's texts are
        # reconstructed by exactly one worker instead of lazily re-parsed by
        # all of them.  One batch per worker — a finer split would let the
        # pool's dynamic scheduling scatter a cluster across workers again.
        bins = _pack_pair_clusters(pairs, self.pool.workers)
        self.stats.ship_seconds += time.perf_counter() - started
        self.stats.functions_shipped += len(texts)

        shared = {
            "functions": texts,
            "target": size_model.name,
            "thunk_overhead": thunk_overhead,
            "minimum_benefit": minimum_benefit,
            "include_phis": include_phis,
        }
        batches = [[(pairs[position][0].name, pairs[position][1].name)
                    for position in positions] for positions in bins]
        results = self._run(SCORE_PAIRS_TASK, shared, batches)
        # Restore the caller's pair order.
        restored: List[Optional[PairScore]] = [None] * len(pairs)
        for positions, batch_scores in zip(bins, results):
            for position, score in zip(positions, batch_scores):
                restored[position] = score
        return restored


def _pack_pair_clusters(pairs: Sequence[Tuple[object, object]],
                        workers: int) -> List[List[int]]:
    """Partition pair indices into at most ``workers`` cost-balanced bins,
    never splitting a connected component across bins.

    Union-find over the functions the pairs mention groups pairs into
    components (typically clone families); components are then packed
    largest-first onto the least-loaded bin, weighted by the alignment DP
    cost (the product of the two body lengths — alignment is quadratic).
    Deterministic: components are formed and tie-broken in first-mention
    order.
    """
    parent: Dict[object, object] = {}

    def find(node):
        root = node
        while parent[root] is not root:
            root = parent[root]
        while parent[node] is not root:  # path compression
            parent[node], node = root, parent[node]
        return root

    for first, second in pairs:
        parent.setdefault(first, first)
        parent.setdefault(second, second)
        parent[find(first)] = find(second)

    components: Dict[object, List[int]] = {}
    weights: Dict[object, int] = {}
    for position, (first, second) in enumerate(pairs):
        root = find(first)
        components.setdefault(root, []).append(position)
        weights[root] = weights.get(root, 0) + \
            (first.num_instructions() + 1) * (second.num_instructions() + 1)

    bins: List[List[int]] = [[] for _ in range(max(1, workers))]
    loads = [0] * len(bins)
    # Stable largest-first packing: sort() is stable, so equal-weight
    # components keep their first-mention order.
    for root in sorted(components, key=lambda r: -weights[r]):
        target = loads.index(min(loads))
        bins[target].extend(components[root])
        loads[target] += weights[root]
    return [sorted(positions) for positions in bins if positions]
