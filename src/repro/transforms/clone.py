"""Function cloning.

The merging pass never mutates the input functions while *evaluating* a merge:
it works on clones, checks profitability, and only then commits.  FMSA
additionally needs clones because register demotion rewrites the body before
alignment.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..ir.basic_block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Instruction, PhiInst
from ..ir.module import Module
from ..ir.values import Argument, Value


def clone_function(function: Function, new_name: Optional[str] = None,
                   module: Optional[Module] = None) -> Tuple[Function, Dict[Value, Value]]:
    """Create a deep copy of ``function``.

    Returns the clone and the value map from original values (arguments,
    blocks, instructions) to their copies.  If ``module`` is given the clone
    is added to it under ``new_name`` (which must then be unique).
    """
    name = new_name if new_name is not None else function.name
    clone = Function(function.function_type, name, [arg.name for arg in function.args])
    value_map: Dict[Value, Value] = {}
    for original_arg, cloned_arg in zip(function.args, clone.args):
        value_map[original_arg] = cloned_arg

    # First pass: create blocks and instruction shells in order.
    for block in function.blocks:
        new_block = BasicBlock(block.name)
        clone.add_block(new_block)
        value_map[block] = new_block

    for block in function.blocks:
        new_block = value_map[block]
        for inst in block.instructions:
            copied = inst.clone()
            copied.name = inst.name
            new_block.append(copied)
            value_map[inst] = copied

    # Second pass: remap operands of the copied instructions.
    for block in function.blocks:
        for inst in block.instructions:
            copied = value_map[inst]
            for index, operand in enumerate(inst.operands):
                if operand is None:
                    continue
                copied.set_operand(index, value_map.get(operand, operand))

    if module is not None:
        module.add_function(clone)
    return clone, value_map
