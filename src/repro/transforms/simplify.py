"""CFG and instruction simplification.

This is the "Simplification" clean-up stage of the pipeline in the paper's
Figure 1.  It is not required for correctness but strongly affects the final
code size: the SalSSA code generator intentionally produces chains of tiny
blocks connected by unconditional branches (§4.1) and relies on this pass to
fold them away.

The pass repeatedly applies, until a fixed point:

* removal of unreachable blocks,
* folding of conditional branches with constant conditions or identical
  targets,
* merging of a block into its single predecessor when that predecessor has a
  single successor (LLVM's ``SimplifyCFG`` block merging),
* removal of trivial phi-nodes and duplicate phi-nodes,
* constant folding of selects/xors over constants,
* dead instruction elimination (delegated to :mod:`repro.transforms.dce`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.cfg import reachable_blocks
from ..analysis.manager import FunctionAnalysisManager
from ..ir.basic_block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    BranchInst,
    Instruction,
    LandingPadInst,
    PhiInst,
    SelectInst,
    SwitchInst,
)
from ..ir.module import Module
from ..ir.values import Constant, UndefValue, Value
from .dce import eliminate_dead_code


@dataclass
class SimplifyStats:
    """What the simplification pass changed."""

    removed_blocks: int = 0
    merged_blocks: int = 0
    folded_branches: int = 0
    removed_phis: int = 0
    folded_selects: int = 0
    removed_instructions: int = 0

    def total(self) -> int:
        return (self.removed_blocks + self.merged_blocks + self.folded_branches +
                self.removed_phis + self.folded_selects + self.removed_instructions)


def simplify_function(function: Function, max_iterations: int = 50,
                      manager: Optional[FunctionAnalysisManager] = None
                      ) -> SimplifyStats:
    """Run the simplification pipeline on one function until a fixed point.

    Simplification removes and merges blocks, so it preserves no analyses —
    a ``manager`` only serves its internal reachability queries (which hit the
    cache whenever the previous iteration left the function unchanged) and the
    delegated DCE's preservation declarations.
    """
    stats = SimplifyStats()
    if function.is_declaration():
        return stats
    for _ in range(max_iterations):
        changed = False
        changed |= _remove_unreachable_blocks(function, stats, manager)
        changed |= _fold_constant_branches(function, stats)
        changed |= _simplify_phis(function, stats)
        changed |= _fold_selects(function, stats)
        changed |= _remove_dead_phi_webs(function, stats)
        changed |= _remove_forwarding_blocks(function, stats)
        changed |= _merge_straightline_blocks(function, stats)
        removed = eliminate_dead_code(function, manager)
        stats.removed_instructions += removed
        changed |= bool(removed)
        if not changed:
            break
    return stats


def simplify_module(module: Module,
                    manager: Optional[FunctionAnalysisManager] = None
                    ) -> Dict[Function, SimplifyStats]:
    """Simplify every defined function of a module."""
    return {f: simplify_function(f, manager=manager)
            for f in module.defined_functions()}


# ---------------------------------------------------------------------------
# Individual rewrites
# ---------------------------------------------------------------------------

def _remove_unreachable_blocks(function: Function, stats: SimplifyStats,
                               manager: Optional[FunctionAnalysisManager] = None
                               ) -> bool:
    reachable = manager.reachable(function) if manager is not None \
        else reachable_blocks(function)
    dead = [block for block in function.blocks if block not in reachable]
    if not dead:
        return False
    for block in dead:
        for successor in block.successors():
            for phi in successor.phis():
                phi.remove_incoming_for_block(block)
        block.erase_from_parent()
        stats.removed_blocks += 1
    return True


def _fold_constant_branches(function: Function, stats: SimplifyStats) -> bool:
    changed = False
    for block in list(function.blocks):
        terminator = block.terminator
        if isinstance(terminator, BranchInst) and terminator.is_conditional:
            condition = terminator.condition
            taken: Optional[BasicBlock] = None
            if isinstance(condition, Constant):
                taken = terminator.if_true if condition.value else terminator.if_false
            elif terminator.if_true is terminator.if_false:
                taken = terminator.if_true
            if taken is None:
                continue
            not_taken = terminator.if_false if taken is terminator.if_true else terminator.if_true
            if not_taken is not taken:
                for phi in not_taken.phis():
                    phi.remove_incoming_for_block(block)
            terminator.erase_from_parent()
            block.append(BranchInst(taken))
            stats.folded_branches += 1
            changed = True
        elif isinstance(terminator, SwitchInst) and isinstance(terminator.condition, Constant):
            value = terminator.condition.value
            taken = terminator.default
            for case_value, case_block in terminator.cases():
                if isinstance(case_value, Constant) and case_value.value == value:
                    taken = case_block
                    break
            for successor in set(terminator.successors()):
                if successor is not taken:
                    for phi in successor.phis():
                        phi.remove_incoming_for_block(block)
            terminator.erase_from_parent()
            block.append(BranchInst(taken))
            stats.folded_branches += 1
            changed = True
    return changed


def _simplify_phis(function: Function, stats: SimplifyStats) -> bool:
    changed = False
    for block in function.blocks:
        preds = block.predecessors()
        for phi in list(block.phis()):
            # Drop incoming entries whose block is no longer a predecessor.
            for incoming_block in list(phi.incoming_blocks()):
                if incoming_block not in preds:
                    phi.remove_incoming_for_block(incoming_block)
            unique = _phi_unique_value(phi)
            if unique is not None:
                phi.replace_all_uses_with(unique)
                phi.erase_from_parent()
                stats.removed_phis += 1
                changed = True
        # Merge identical phi-nodes (same incoming values from same blocks).
        remaining = block.phis()
        for index, phi in enumerate(remaining):
            if phi.parent is None:
                continue
            signature = _phi_signature(phi)
            for other in remaining[index + 1:]:
                if other.parent is None:
                    continue
                if _phi_signature(other) == signature and other.type == phi.type:
                    other.replace_all_uses_with(phi)
                    other.erase_from_parent()
                    stats.removed_phis += 1
                    changed = True
    return changed


def _phi_unique_value(phi: PhiInst) -> Optional[Value]:
    unique: Optional[Value] = None
    for value, _ in phi.incoming():
        if value is phi:
            continue
        if unique is None:
            unique = value
        elif value is not unique:
            if isinstance(value, UndefValue) and isinstance(unique, UndefValue):
                continue
            if isinstance(value, Constant) and isinstance(unique, Constant) and value == unique:
                continue
            return None
    if phi.num_incoming() == 1:
        return phi.incoming_values()[0]
    if unique is not None and phi.num_incoming() > 0:
        # Only safe when every incoming entry is that same value/constant.
        if all(v is phi or v is unique or
               (isinstance(v, Constant) and isinstance(unique, Constant) and v == unique)
               for v in phi.incoming_values()):
            return unique
    return None


def _phi_signature(phi: PhiInst):
    def value_key(value: Value):
        if isinstance(value, Constant):
            return ("const", value.type, value.value)
        if isinstance(value, UndefValue):
            return ("undef", value.type)
        return ("id", id(value))

    return tuple((value_key(value), id(block)) for value, block in
                 sorted(phi.incoming(), key=lambda pair: id(pair[1])))


def _remove_dead_phi_webs(function: Function, stats: SimplifyStats) -> bool:
    """Remove phi-nodes that are only used by other phi-nodes in the same web.

    SSA reconstruction places phi-nodes at iterated dominance frontiers; when a
    value turns out not to be live past some join, the inserted phis keep each
    other alive in a cycle even though no real instruction reads them.  Plain
    DCE cannot break such cycles, so they are handled here.
    """
    phis = [inst for block in function.blocks for inst in block.phis()]
    if not phis:
        return False
    live: set = set()
    worklist = []
    for phi in phis:
        for user in phi.users():
            if not isinstance(user, PhiInst):
                live.add(phi)
                worklist.append(phi)
                break
    # Anything feeding a live phi is live as well.
    while worklist:
        current = worklist.pop()
        for value in current.incoming_values():
            if isinstance(value, PhiInst) and value not in live:
                live.add(value)
                worklist.append(value)
    dead = [phi for phi in phis if phi not in live]
    for phi in dead:
        phi.drop_all_operands()
    for phi in dead:
        phi.replace_all_uses_with(UndefValue(phi.type))
        if phi.parent is not None:
            phi.erase_from_parent()
        stats.removed_phis += 1
    return bool(dead)


def _fold_selects(function: Function, stats: SimplifyStats) -> bool:
    changed = False
    for block in function.blocks:
        for inst in list(block.instructions):
            if not isinstance(inst, SelectInst):
                continue
            replacement: Optional[Value] = None
            if isinstance(inst.condition, Constant):
                replacement = inst.if_true if inst.condition.value else inst.if_false
            elif inst.if_true is inst.if_false:
                replacement = inst.if_true
            if replacement is not None:
                inst.replace_all_uses_with(replacement)
                inst.erase_from_parent()
                stats.folded_selects += 1
                changed = True
    return changed


def _remove_forwarding_blocks(function: Function, stats: SimplifyStats) -> bool:
    """Remove blocks that contain nothing but an unconditional branch by
    redirecting their predecessors to the branch target (SimplifyCFG's
    ``TryToSimplifyUncondBranchFromEmptyBlock``)."""
    changed = False
    for block in list(function.blocks):
        if block.parent is None or block is function.entry_block:
            continue
        if len(block.instructions) != 1:
            continue
        terminator = block.terminator
        if not isinstance(terminator, BranchInst) or terminator.is_conditional:
            continue
        successor = terminator.if_true
        if not isinstance(successor, BasicBlock) or successor is block:
            continue
        preds = block.predecessors()
        successor_preds = successor.predecessors()
        # Folding would create duplicate phi edges if a predecessor already
        # reaches the successor directly; only fold when the phis agree.
        conflict = False
        for phi in successor.phis():
            through_block = phi.incoming_value_for_block(block)
            for pred in preds:
                if pred in successor_preds:
                    direct = phi.incoming_value_for_block(pred)
                    if direct is not through_block:
                        conflict = True
                        break
            if conflict:
                break
        if conflict or not preds:
            continue
        for phi in successor.phis():
            through_block = phi.incoming_value_for_block(block)
            phi.remove_incoming_for_block(block)
            for pred in preds:
                if phi.incoming_value_for_block(pred) is None:
                    phi.add_incoming(through_block if through_block is not None
                                     else UndefValue(phi.type), pred)
        for pred in preds:
            pred_terminator = pred.terminator
            if pred_terminator is not None:
                pred_terminator.replace_successor(block, successor)
        block.erase_from_parent()
        stats.removed_blocks += 1
        changed = True
    return changed


def _merge_straightline_blocks(function: Function, stats: SimplifyStats) -> bool:
    """Merge ``A -> B`` when A ends in an unconditional branch to B and B has
    no other predecessors (and no landing pad / entry constraints)."""
    changed = False
    for block in list(function.blocks):
        if block.parent is None:
            continue
        terminator = block.terminator
        if not isinstance(terminator, BranchInst) or terminator.is_conditional:
            continue
        successor = terminator.if_true
        if not isinstance(successor, BasicBlock) or successor is block:
            continue
        if successor is function.entry_block:
            continue
        preds = successor.predecessors()
        if len(preds) != 1 or preds[0] is not block:
            continue
        if any(isinstance(i, LandingPadInst) for i in successor.instructions):
            continue
        # Rewire phis in the successor: with a single predecessor they are
        # trivial and can be replaced by their incoming value.
        for phi in list(successor.phis()):
            incoming = phi.incoming_value_for_block(block)
            if incoming is None:
                incoming = UndefValue(phi.type)
            phi.replace_all_uses_with(incoming)
            phi.erase_from_parent()
            stats.removed_phis += 1
        terminator.erase_from_parent()
        for inst in list(successor.instructions):
            successor.remove_instruction(inst)
            block.append(inst)
        # Phis in the successors of the merged block must now name `block`.
        for next_successor in block.successors():
            for phi in next_successor.phis():
                phi.replace_incoming_block(successor, block)
        successor.replace_all_uses_with(block)
        successor.erase_from_parent()
        stats.merged_blocks += 1
        changed = True
    return changed
