"""IR-to-IR transformations: register demotion/promotion, SSA reconstruction,
CFG simplification and dead code elimination."""

from .reg2mem import Reg2MemStats, demote_function, demote_module
from .mem2reg import (
    Mem2RegStats,
    ReconstructionResult,
    SSAReconstructor,
    is_promotable,
    promote_allocas,
    promote_module,
)
from .simplify import SimplifyStats, simplify_function, simplify_module
from .dce import eliminate_dead_code, eliminate_dead_code_module, is_trivially_dead

__all__ = [name for name in dir() if not name.startswith("_")]
