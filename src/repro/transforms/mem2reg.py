"""Register promotion (``mem2reg``) and SSA reconstruction.

Two closely related pieces live here:

* :func:`promote_allocas` — the classic Cytron et al. SSA-construction
  algorithm applied to promotable stack slots.  FMSA runs it after code
  generation to undo register demotion (paper Fig. 1).  Crucially, a slot is
  only *promotable* when every access uses the slot's address directly; merged
  stack accesses whose address is chosen by a ``select`` on the function
  identifier are **not** promotable — this is exactly the failure mode the
  paper's motivating example highlights (§3, Fig. 4).

* :class:`SSAReconstructor` — the "standard SSA construction algorithm"
  SalSSA relies on to restore the dominance property after code generation
  (§4.3) and the vehicle for phi-node coalescing (§4.4): a group of
  definitions registered under one name is treated as a single variable, a
  pseudo-definition of ``undef`` is added at the entry, phi-nodes are placed
  at the iterated dominance frontier and uses are rewired by a dominator-tree
  walk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..analysis.cfg import predecessor_map, reachable_blocks
from ..analysis.dominators import DominatorTree
from ..analysis.manager import CFG_ANALYSES, FunctionAnalysisManager
from ..ir.basic_block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    Instruction,
    LoadInst,
    PhiInst,
    StoreInst,
)
from ..ir.module import Module
from ..ir.types import Type
from ..ir.values import UndefValue, Value


# ---------------------------------------------------------------------------
# Promotable alloca detection
# ---------------------------------------------------------------------------

def is_promotable(alloca: AllocaInst) -> bool:
    """True if the stack slot can be rewritten into SSA registers.

    The slot address must only ever be used *directly* as the pointer operand
    of loads and stores.  Any other use — being stored as a value, passed to a
    call, fed through a ``select`` or GEP — escapes the address and blocks
    promotion (the paper's §3 "prevents promotion" case).
    """
    for user, index in alloca.uses:
        if isinstance(user, LoadInst) and user.pointer is alloca:
            continue
        if isinstance(user, StoreInst) and user.pointer is alloca and user.value is not alloca:
            continue
        return False
    return True


@dataclass
class Mem2RegStats:
    """Bookkeeping about one register-promotion run."""

    promoted_allocas: int = 0
    unpromotable_allocas: int = 0
    removed_loads: int = 0
    removed_stores: int = 0
    inserted_phis: int = 0


def promote_allocas(function: Function,
                    manager: Optional[FunctionAnalysisManager] = None) -> Mem2RegStats:
    """Promote every promotable stack slot of ``function`` into SSA values.

    With a ``manager``, the CFG analyses are pulled from (and kept in) the
    shared cache: promotion inserts/removes only non-terminator instructions,
    so it declares :data:`~repro.analysis.manager.CFG_ANALYSES` preserved.
    Either way the dominator tree is built at most once per promotion round.
    """
    stats = Mem2RegStats()
    if function.is_declaration() or function.entry_block is None:
        return stats

    allocas = [inst for inst in function.instructions() if isinstance(inst, AllocaInst)]
    promotable = []
    for alloca in allocas:
        if is_promotable(alloca):
            promotable.append(alloca)
        else:
            stats.unpromotable_allocas += 1
    if not promotable:
        return stats

    epoch = function.mutation_epoch
    if manager is not None:
        domtree = manager.domtree(function)
        reachable = manager.reachable(function)
        preds = manager.predecessors(function)
    else:
        domtree = DominatorTree(function)
        reachable = reachable_blocks(function)
        preds = predecessor_map(function)

    for alloca in promotable:
        _promote_one(function, alloca, domtree, reachable, preds, stats)
        stats.promoted_allocas += 1
    if manager is not None:
        manager.mark_preserved(function, CFG_ANALYSES, since=epoch)
    return stats


def promote_module(module: Module,
                   manager: Optional[FunctionAnalysisManager] = None
                   ) -> Dict[Function, Mem2RegStats]:
    """Promote allocas in every defined function of a module."""
    return {f: promote_allocas(f, manager) for f in module.defined_functions()}


def _promote_one(function: Function, alloca: AllocaInst, domtree: DominatorTree,
                 reachable: Set[BasicBlock], preds, stats: Mem2RegStats) -> None:
    loads = [u for u in alloca.users() if isinstance(u, LoadInst)]
    stores = [u for u in alloca.users() if isinstance(u, StoreInst)]
    value_type = alloca.allocated_type

    def_blocks: Set[BasicBlock] = {s.parent for s in stores if s.parent is not None}
    def_blocks &= reachable

    # Place (initially empty) phi-nodes at the iterated dominance frontier.
    phis: Dict[BasicBlock, PhiInst] = {}
    if def_blocks:
        for block in domtree.iterated_dominance_frontier(def_blocks):
            if block not in reachable:
                continue
            phi = PhiInst(value_type, name=function.unique_name("mem2reg"))
            block.insert(0, phi)
            phis[block] = phi
            stats.inserted_phis += 1

    # Rename: walk the dominator tree carrying the current value of the slot.
    entry = function.entry_block
    incoming_value: Dict[BasicBlock, Value] = {}
    outgoing_value: Dict[BasicBlock, Value] = {}
    undef = UndefValue(value_type)

    for block in domtree.dominator_tree_preorder():
        idom = domtree.immediate_dominator(block)
        current: Value = phis.get(block) or (
            incoming_value.get(block, undef) if block is entry else
            outgoing_value.get(idom, undef) if idom is not None else undef)
        for inst in list(block.instructions):
            if isinstance(inst, LoadInst) and inst.pointer is alloca:
                inst.replace_all_uses_with(current)
                inst.erase_from_parent()
                stats.removed_loads += 1
            elif isinstance(inst, StoreInst) and inst.pointer is alloca:
                current = inst.value
                inst.erase_from_parent()
                stats.removed_stores += 1
        outgoing_value[block] = current

    # Fill in phi incoming values from every predecessor.
    for block, phi in phis.items():
        for pred in preds.get(block, []):
            phi.add_incoming(outgoing_value.get(pred, undef), pred)

    alloca.erase_from_parent()

    # Remove phis that ended up trivial (single unique incoming value).
    _prune_trivial_phis(list(phis.values()), stats)


def _prune_trivial_phis(phis: List[PhiInst], stats: Optional[Mem2RegStats] = None) -> None:
    changed = True
    while changed:
        changed = False
        for phi in list(phis):
            if phi.parent is None:
                continue
            unique = _unique_incoming(phi)
            if unique is not None:
                phi.replace_all_uses_with(unique)
                phi.erase_from_parent()
                phis.remove(phi)
                if stats is not None:
                    stats.inserted_phis -= 1
                changed = True


def _unique_incoming(phi: PhiInst) -> Optional[Value]:
    """The single value a trivial phi forwards, or None if it is not trivial.

    Only self-references are ignored; an ``undef`` incoming value keeps the phi
    alive because replacing ``phi(v, undef)`` with ``v`` could break the
    dominance property (it is SalSSA's phi-node coalescing, not this pruning,
    that is allowed to exploit disjointness).
    """
    unique: Optional[Value] = None
    for value, _ in phi.incoming():
        if value is phi:
            continue
        if unique is None:
            unique = value
        elif value is not unique and not (isinstance(value, UndefValue)
                                          and isinstance(unique, UndefValue)):
            return None
    return unique


# ---------------------------------------------------------------------------
# SSA reconstruction (used by SalSSA's repair and phi-node coalescing)
# ---------------------------------------------------------------------------

@dataclass
class ReconstructionResult:
    """Outcome of rewriting one variable (group of definitions)."""

    inserted_phis: List[PhiInst] = field(default_factory=list)
    rewritten_uses: int = 0


class SSAReconstructor:
    """Restores the SSA dominance property for groups of definitions.

    Each call to :meth:`reconstruct` treats the given definitions as writes to
    a single imaginary variable (the paper's coalesced name), adds an implicit
    ``undef`` definition at the function entry, places phi-nodes at the
    iterated dominance frontier of the definition blocks and rewrites every
    registered use to the value reaching it.
    """

    def __init__(self, function: Function,
                 manager: Optional[FunctionAnalysisManager] = None) -> None:
        self.function = function
        # A private manager still deduplicates the reconstructor's own repeated
        # queries; a shared one additionally lets other consumers (codegen's
        # violation scan, the verifier) reuse the same dominator tree.
        self.manager = manager or FunctionAnalysisManager()
        self._load()

    def _load(self) -> None:
        self.domtree = self.manager.domtree(self.function)
        self.preds = self.manager.predecessors(self.function)
        self.reachable = self.manager.reachable(self.function)

    def refresh(self) -> None:
        """Recompute CFG-derived state after the function has been edited.

        Epoch-aware: analyses still stamped with the current mutation epoch
        are reused, anything stale is recomputed.
        """
        self._load()

    def reconstruct(self, definitions: Sequence[Instruction],
                    value_type: Optional[Type] = None) -> ReconstructionResult:
        """Rewire all uses of ``definitions`` so every use is dominated.

        ``definitions`` may contain one value (plain dominance repair) or a
        pair of *disjoint* definitions (phi-node coalescing, §4.4): in both
        cases all their uses end up reading the single reconstructed variable.
        """
        result = ReconstructionResult()
        definitions = [d for d in definitions if d.parent is not None]
        if not definitions:
            return result
        if value_type is None:
            value_type = definitions[0].type
        entry = self.function.entry_block
        if entry is None:
            return result

        # Uses to rewrite: every use of any definition in the group, except the
        # definitions themselves.
        use_records = []
        definition_set = set(definitions)
        for definition in definitions:
            for user, index in definition.uses:
                if isinstance(user, Instruction) and user not in definition_set:
                    use_records.append((user, index, definition))
        if not use_records:
            return result
        epoch = self.function.mutation_epoch

        def_blocks: Set[BasicBlock] = {entry}
        def_blocks.update(d.parent for d in definitions if d.parent in self.reachable)

        # Pruned SSA: only place phi-nodes where the reconstructed variable is
        # live-in, otherwise dominance-frontier placement floods the merged
        # function with dead phi webs.
        live_in = self._live_in_blocks(definition_set, use_records)

        phis: Dict[BasicBlock, PhiInst] = {}
        for block in self.domtree.iterated_dominance_frontier(def_blocks):
            if block not in self.reachable or block not in live_in:
                continue
            phi = PhiInst(value_type, name=self.function.unique_name("ssa.repair"))
            block.insert(0, phi)
            phis[block] = phi
            result.inserted_phis.append(phi)

        undef = UndefValue(value_type)
        outgoing: Dict[BasicBlock, Value] = {}
        current_at: Dict[Instruction, Value] = {}

        for block in self.domtree.dominator_tree_preorder():
            idom = self.domtree.immediate_dominator(block)
            if block in phis:
                current: Value = phis[block]
            elif block is entry:
                current = undef
            elif idom is not None:
                current = outgoing.get(idom, undef)
            else:
                current = undef
            for inst in block.instructions:
                current_at[inst] = current
                if inst in definition_set:
                    current = inst
            outgoing[block] = current

        # Rewrite non-phi uses with the value reaching the use point, and phi
        # uses with the value reaching the end of the incoming block.
        for user, index, definition in use_records:
            if isinstance(user, PhiInst):
                incoming_block = user.get_operand(index + 1)
                replacement = outgoing.get(incoming_block, undef)
            else:
                replacement = current_at.get(user, undef)
            if replacement is user:
                # A phi should not feed itself through reconstruction; fall back
                # to the original definition (already dominating in that case).
                replacement = definition
            if replacement is not definition or replacement is not user.get_operand(index):
                user.set_operand(index, replacement)
                result.rewritten_uses += 1

        # Fill the incoming lists of the repair phis.
        for block, phi in phis.items():
            for pred in self.preds.get(block, []):
                phi.add_incoming(outgoing.get(pred, undef), pred)

        # Reconstruction inserts phi-nodes and rewrites operands but never
        # touches block structure or terminators, so the CFG analyses remain
        # valid for the epochs this call is responsible for.
        self.manager.mark_preserved(self.function, CFG_ANALYSES, since=epoch)
        return result

    def _live_in_blocks(self, definition_set: Set[Instruction],
                        use_records) -> Set[BasicBlock]:
        """Blocks where the reconstructed variable is live on entry.

        A block is live-in if some registered use can be reached from its start
        without passing one of the definitions first (standard pruned-SSA
        liveness, computed backwards from the use points).
        """
        live_in: Set[BasicBlock] = set()
        worklist: List[BasicBlock] = []

        def defs_before(block: BasicBlock, boundary: Instruction) -> bool:
            for inst in block.instructions:
                if inst is boundary:
                    return False
                if inst in definition_set:
                    return True
            return False

        def mark_live_out(block: BasicBlock) -> None:
            # Live at the end of `block`: propagate to live-in unless a
            # definition inside the block kills the variable.
            if any(inst in definition_set for inst in block.instructions):
                return
            if block not in live_in:
                live_in.add(block)
                worklist.append(block)

        for user, index, _definition in use_records:
            if user.parent is None:
                continue
            if isinstance(user, PhiInst):
                incoming_block = user.get_operand(index + 1)
                if isinstance(incoming_block, BasicBlock):
                    mark_live_out(incoming_block)
                continue
            if not defs_before(user.parent, user) and user.parent not in live_in:
                live_in.add(user.parent)
                worklist.append(user.parent)

        while worklist:
            block = worklist.pop()
            for pred in self.preds.get(block, []):
                mark_live_out(pred)
        return live_in
