"""Dead code elimination.

A simple, safe DCE: instructions whose results are unused and which have no
side effects are removed, iterating until a fixed point so chains of dead
computations collapse.  Used by the post-merge clean-up (paper Fig. 1) and by
the thunk-rewriting step of the pass manager.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.manager import CFG_ANALYSES, FunctionAnalysisManager
from ..ir.function import Function
from ..ir.instructions import AllocaInst, Instruction, LoadInst, StoreInst
from ..ir.module import Module


def is_trivially_dead(inst: Instruction) -> bool:
    """True if the instruction can be deleted without changing behaviour."""
    if inst.is_terminator():
        return False
    if inst.is_used():
        return False
    if isinstance(inst, (AllocaInst, LoadInst)):
        return True
    return not inst.has_side_effects()


def eliminate_dead_code(function: Function,
                        manager: Optional[FunctionAnalysisManager] = None) -> int:
    """Remove trivially dead instructions; returns how many were deleted.

    DCE never removes terminators or blocks, so with a ``manager`` it declares
    the CFG analyses preserved across its deletions.
    """
    if function.is_declaration():
        return 0
    epoch = function.mutation_epoch
    removed = 0
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for inst in reversed(list(block.instructions)):
                if is_trivially_dead(inst):
                    inst.erase_from_parent()
                    removed += 1
                    changed = True
        # Stores to a stack slot that is never loaded are dead as well.
        dead_stack = _remove_dead_alloca_stores(function)
        removed += dead_stack
        changed |= bool(dead_stack)
    if manager is not None and removed:
        manager.mark_preserved(function, CFG_ANALYSES, since=epoch)
    return removed


def _remove_dead_alloca_stores(function: Function) -> int:
    removed = 0
    for block in function.blocks:
        for inst in list(block.instructions):
            if not isinstance(inst, AllocaInst):
                continue
            users = inst.users()
            if users and all(isinstance(u, StoreInst) and u.pointer is inst for u in users):
                for store in list(users):
                    store.erase_from_parent()
                    removed += 1
                inst.erase_from_parent()
                removed += 1
    return removed


def eliminate_dead_code_module(module: Module,
                               manager: Optional[FunctionAnalysisManager] = None
                               ) -> Dict[Function, int]:
    """Run DCE over every defined function of a module."""
    return {f: eliminate_dead_code(f, manager) for f in module.defined_functions()}
