"""Register demotion (``reg2mem``).

This is the pre-processing step FMSA depends on (paper Fig. 1): it removes
phi-nodes and cross-block SSA values by spilling them to stack slots so that
the sequence-driven code generator never has to reason about control flow.

Two kinds of values are demoted, mirroring LLVM's ``-reg2mem`` pass:

* **phi-nodes** — each phi gets an ``alloca``; every incoming edge stores the
  incoming value at the end of the predecessor block and the phi itself is
  replaced by a ``load`` at the top of its block;
* **cross-block registers** — any instruction result used outside its defining
  block gets an ``alloca``, a ``store`` right after the definition and a
  ``load`` in front of every out-of-block use.

The paper's Figure 5 observation — register demotion grows functions by ~75 %
on average, often 2x — emerges directly from this construction and is checked
by the Figure 5 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.manager import CFG_ANALYSES, FunctionAnalysisManager
from ..ir.basic_block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    Instruction,
    LoadInst,
    PhiInst,
    StoreInst,
    TerminatorInst,
)
from ..ir.module import Module
from ..ir.values import Value


@dataclass
class Reg2MemStats:
    """Bookkeeping about one register-demotion run."""

    demoted_phis: int = 0
    demoted_registers: int = 0
    inserted_allocas: int = 0
    inserted_loads: int = 0
    inserted_stores: int = 0

    def total_inserted(self) -> int:
        return self.inserted_allocas + self.inserted_loads + self.inserted_stores


def demote_function(function: Function,
                    manager: Optional[FunctionAnalysisManager] = None) -> Reg2MemStats:
    """Demote phi-nodes and cross-block registers of ``function`` to the stack.

    Demotion spills values through fresh allocas/loads/stores but never adds,
    removes or re-targets a block, so with a ``manager`` it declares the CFG
    analyses preserved (liveness, fingerprints and sizes go stale as usual).
    """
    stats = Reg2MemStats()
    if function.is_declaration():
        return stats
    entry = function.entry_block
    if entry is None:
        return stats

    epoch = function.mutation_epoch
    _demote_phis(function, entry, stats)
    _demote_cross_block_registers(function, entry, stats)
    if manager is not None:
        manager.mark_preserved(function, CFG_ANALYSES, since=epoch)
    return stats


def demote_module(module: Module,
                  manager: Optional[FunctionAnalysisManager] = None
                  ) -> Dict[Function, Reg2MemStats]:
    """Demote every defined function of a module; returns per-function stats."""
    return {f: demote_function(f, manager) for f in module.defined_functions()}


# ---------------------------------------------------------------------------
# Phi demotion
# ---------------------------------------------------------------------------

def _demote_phis(function: Function, entry: BasicBlock, stats: Reg2MemStats) -> None:
    for block in list(function.blocks):
        for phi in list(block.phis()):
            slot = AllocaInst(phi.type, function.unique_name("phi.slot"))
            entry.insert(0, slot)
            stats.inserted_allocas += 1
            stats.demoted_phis += 1

            for value, pred in phi.incoming():
                if not isinstance(pred, BasicBlock):
                    continue
                store = StoreInst(value, slot)
                pred.insert_before_terminator(store)
                stats.inserted_stores += 1

            load = LoadInst(slot, function.unique_name(phi.name or "phi"))
            index = block.instructions.index(phi)
            block.insert(index, load)
            phi.replace_all_uses_with(load)
            phi.erase_from_parent()
            stats.inserted_loads += 1


# ---------------------------------------------------------------------------
# Cross-block register demotion
# ---------------------------------------------------------------------------

def _demote_cross_block_registers(function: Function, entry: BasicBlock,
                                  stats: Reg2MemStats) -> None:
    # Collect candidates first: instruction results with a use outside their block.
    candidates: List[Instruction] = []
    for block in function.blocks:
        for inst in block.instructions:
            if not inst.produces_value() or isinstance(inst, AllocaInst):
                continue
            if any(isinstance(user, Instruction) and user.parent is not inst.parent
                   for user in inst.users()):
                candidates.append(inst)

    for inst in candidates:
        slot = AllocaInst(inst.type, function.unique_name(f"{inst.name or 'reg'}.slot"))
        entry.insert(0, slot)
        stats.inserted_allocas += 1
        stats.demoted_registers += 1

        # Store right after the definition (after the whole phi group for phis,
        # after the terminator is impossible, so clamp to before the terminator).
        block = inst.parent
        position = block.instructions.index(inst) + 1
        terminator_index = len(block.instructions)
        if block.terminator is not None:
            terminator_index = block.instructions.index(block.terminator)
        if isinstance(inst, TerminatorInst):
            position = terminator_index
        position = min(position, terminator_index)
        block.insert(position, StoreInst(inst, slot))
        stats.inserted_stores += 1

        # Replace each out-of-block use with a fresh load just before the user.
        for user, operand_index in list(inst.uses):
            if not isinstance(user, Instruction) or user.parent is inst.parent:
                continue
            if isinstance(user, StoreInst) and user.pointer is slot:
                continue
            user_block = user.parent
            if isinstance(user, PhiInst):
                # Should not happen (phis were demoted first), but stay safe:
                # place the reload at the end of the incoming block.
                incoming_block = user.get_operand(operand_index + 1)
                load = LoadInst(slot, function.unique_name(inst.name or "reload"))
                incoming_block.insert_before_terminator(load)
            else:
                load = LoadInst(slot, function.unique_name(inst.name or "reload"))
                user_block.insert_before(user, load)
            user.set_operand(operand_index, load)
            stats.inserted_loads += 1
