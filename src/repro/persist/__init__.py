"""Content-addressed persistence: warm-start artifacts for repeated runs.

Every pipeline invocation used to start cold — fingerprints, MinHash/LSH
signatures and cost-model sizes were recomputed from scratch even when the
module barely changed between runs.  This subsystem gives those
process-external artifacts an on-disk home:

* :class:`ArtifactStore` — a content-addressed JSON store (one directory,
  versioned records, corruption-tolerant: a bad or stale record is a miss,
  never an error).
* :class:`PersistentAnalysisCache` — backs the analysis manager for analyses
  whose results are pure data (fingerprints, function sizes), keyed by
  :meth:`repro.ir.function.Function.content_digest` so invalidation reduces
  to "the digest changed".
* The MinHash/LSH candidate index persists its per-function signatures
  through the same store (see :class:`repro.search.MinHashLSHIndex`).

Thread a ``cache_dir`` through :func:`repro.harness.pipeline.run_pipeline`
(or :class:`repro.merge.pass_manager.MergePassOptions`) to turn it on; see
``docs/persistence.md`` for the store layout and invalidation story.
"""

from .cache import ANALYSIS_KIND_PREFIX, PersistentAnalysisCache
from .store import SCHEMA_VERSION, ArtifactStore, StoreStats

__all__ = [
    "ANALYSIS_KIND_PREFIX",
    "ArtifactStore",
    "PersistentAnalysisCache",
    "SCHEMA_VERSION",
    "StoreStats",
]
