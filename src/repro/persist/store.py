"""Content-addressed on-disk artifact store.

The store maps ``(kind, digest)`` pairs to JSON payloads under a fan-out
directory layout::

    <root>/objects/<kind>/<digest[:2]>/<digest>.json

``kind`` names the artifact family (``analysis.fingerprint``,
``minhash_signature``, ...) and ``digest`` is a content address — for
per-function artifacts, :meth:`repro.ir.function.Function.content_digest` —
so a record is valid exactly as long as the content it was derived from
exists, with no invalidation protocol at all: content changed ⇒ different
digest ⇒ the old record is simply never looked up again.

Robustness contract (the store is a *cache*, never a source of truth):

* Every record carries a schema tag plus its own ``kind``/``digest``; a
  missing, truncated, corrupt, mis-filed or schema-incompatible record is a
  **miss**, never an error.
* Writes go to a per-process temporary file and are published with an atomic
  :func:`os.replace`, so concurrent writers are last-wins and readers never
  observe a half-written record.
* Write failures (read-only disk, quota) are swallowed and counted — a store
  that cannot persist degrades to the cold path.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Union

#: Version tag of the on-disk record format.  Bump on any incompatible change
#: to the record envelope or a payload encoding: old records then read as
#: schema mismatches (cold rebuild), never as wrong data.
SCHEMA_VERSION = 1

_UNSAFE_PATH_CHARS = re.compile(r"[^A-Za-z0-9_.-]")


@dataclass
class StoreStats:
    """Hit/miss/load/store counters of one :class:`ArtifactStore`."""

    #: Loads that returned a valid payload.
    hits: int = 0
    #: Loads that found nothing usable (absent, corrupt or schema-mismatched).
    misses: int = 0
    #: Records written (published via atomic replace).
    stores: int = 0
    #: Records rejected as unreadable or semantically invalid — counted on
    #: top of the miss they also produce.
    corrupt_records: int = 0
    #: Records rejected because their schema tag did not match the store's.
    schema_mismatches: int = 0
    #: Failed write attempts (the store keeps working, just colder).
    write_errors: int = 0
    #: Records deleted by :meth:`ArtifactStore.compact` garbage collection.
    evicted: int = 0

    @property
    def loads(self) -> int:
        """Total load attempts (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of loads served from the store."""
        return self.hits / self.loads if self.loads else 0.0

    def merge(self, other: "StoreStats") -> "StoreStats":
        """Fold ``other``'s counters into this one (in place) and return self."""
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.corrupt_records += other.corrupt_records
        self.schema_mismatches += other.schema_mismatches
        self.write_errors += other.write_errors
        self.evicted += other.evicted
        return self

    def as_dict(self) -> Dict[str, Any]:
        """A flat summary suitable for reporting / ``extra_info`` dumps."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "loads": self.loads,
            "stores": self.stores,
            "hit_rate": self.hit_rate,
            "corrupt_records": self.corrupt_records,
            "schema_mismatches": self.schema_mismatches,
            "write_errors": self.write_errors,
            "evicted": self.evicted,
        }


class ArtifactStore:
    """A content-addressed JSON artifact store rooted at one directory.

    Several stores (from several processes) may share a root concurrently;
    records are immutable in meaning — two writers racing on the same
    ``(kind, digest)`` write the same logical content, so last-wins replace
    is safe.
    """

    def __init__(self, root: Union[str, Path],
                 schema_version: int = SCHEMA_VERSION,
                 stats: Optional[StoreStats] = None,
                 read_only: bool = False) -> None:
        self.root = Path(root)
        self.schema_version = schema_version
        self.stats = stats or StoreStats()
        #: Read-only stores decline every write (no error, no counter churn):
        #: the mode ``repro.parallel`` workers open the shared store in, so
        #: only the parent process ever publishes records.
        self.read_only = read_only
        self._sequence = 0
        #: Optional repro.obs.MetricsRegistry (see :meth:`attach_metrics`):
        #: when attached, load/store calls time themselves into the
        #: ``repro_store_io_seconds`` timer family.
        self._metrics = None
        self._io_timers = None

    def attach_metrics(self, registry) -> None:
        """Record store I/O timings into ``registry``.

        Purely observational — payloads, hit/miss behaviour and the
        :class:`StoreStats` counters are identical with or without a
        registry.  Passing ``None`` detaches.
        """
        self._metrics = registry
        if registry is None:
            self._io_timers = None
            return
        help_text = "Wall-clock of artifact-store I/O, by operation."
        self._io_timers = {
            "load": registry.timer("repro_store_io_seconds", help=help_text,
                                   op="load"),
            "store": registry.timer("repro_store_io_seconds", help=help_text,
                                    op="store"),
        }

    # ---------------------------------------------------------------- layout
    def path_for(self, kind: str, digest: str) -> Path:
        """Where a record lives on disk (paths are sanitized, records verify
        the *logical* kind/digest, so sanitization collisions stay safe)."""
        safe_kind = _UNSAFE_PATH_CHARS.sub("_", kind) or "_"
        safe_digest = _UNSAFE_PATH_CHARS.sub("_", digest) or "_"
        fan_out = safe_digest[:2] if len(safe_digest) >= 2 else "__"
        return self.root / "objects" / safe_kind / fan_out / f"{safe_digest}.json"

    # ----------------------------------------------------------------- loads
    def load(self, kind: str, digest: str) -> Optional[Any]:
        """The payload stored under ``(kind, digest)``, or ``None`` (a miss).

        Any defect — absent file, unreadable file, invalid JSON, wrong
        envelope, schema mismatch, mis-filed record — is a miss.
        """
        if self._io_timers is None:
            return self._load(kind, digest)
        with self._io_timers["load"].time():
            return self._load(kind, digest)

    def _load(self, kind: str, digest: str) -> Optional[Any]:
        path = self.path_for(kind, digest)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.stats.misses += 1
            return None
        except UnicodeDecodeError:
            self.stats.misses += 1
            self.stats.corrupt_records += 1
            return None
        try:
            record = json.loads(text)
        except ValueError:
            self.stats.misses += 1
            self.stats.corrupt_records += 1
            return None
        if not isinstance(record, dict) or "payload" not in record:
            self.stats.misses += 1
            self.stats.corrupt_records += 1
            return None
        if record.get("schema") != self.schema_version:
            self.stats.misses += 1
            self.stats.schema_mismatches += 1
            return None
        if record.get("kind") != kind or record.get("digest") != digest:
            self.stats.misses += 1
            self.stats.corrupt_records += 1
            return None
        self.stats.hits += 1
        return record["payload"]

    # ---------------------------------------------------------------- stores
    def store(self, kind: str, digest: str, payload: Any) -> bool:
        """Persist ``payload`` under ``(kind, digest)``; False on write failure."""
        if self.read_only:
            return False
        if self._io_timers is None:
            return self._store(kind, digest, payload)
        with self._io_timers["store"].time():
            return self._store(kind, digest, payload)

    def _store(self, kind: str, digest: str, payload: Any) -> bool:
        path = self.path_for(kind, digest)
        record = {
            "schema": self.schema_version,
            "kind": kind,
            "digest": digest,
            "payload": payload,
        }
        self._sequence += 1
        temp = path.with_name(f".{path.name}.{os.getpid()}.{self._sequence}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            temp.write_text(
                json.dumps(record, separators=(",", ":"), sort_keys=True),
                encoding="utf-8")
            os.replace(temp, path)
        except (OSError, TypeError, ValueError):
            self.stats.write_errors += 1
            try:
                temp.unlink()
            except OSError:
                pass
            return False
        self.stats.stores += 1
        return True

    # ------------------------------------------------------------ inventory
    def iter_digests(self, kind: str) -> Iterable[str]:
        """Every digest with a record filed under ``kind`` (unvalidated:
        the names on disk, in no particular order — a later :meth:`load`
        still applies the full robustness contract to each)."""
        kind_dir = self.root / "objects" / (
            _UNSAFE_PATH_CHARS.sub("_", kind) or "_")
        try:
            fan_dirs = [path for path in kind_dir.iterdir() if path.is_dir()]
        except OSError:
            return
        for fan_dir in fan_dirs:
            try:
                records = list(fan_dir.glob("*.json"))
            except OSError:
                continue
            for record in records:
                yield record.name[:-len(".json")]

    # ------------------------------------------------------------ compaction
    def compact(self, live_digests, kinds: Optional[Iterable[str]] = None) -> int:
        """Garbage-collect records whose digest is not in ``live_digests``.

        ``live_digests`` is the set of content digests still reachable (e.g.
        ``Function.content_digest()`` over every module the store serves);
        composite record keys like the MinHash signatures'
        ``<digest>.<config>`` are matched on their leading digest segment, so
        one live set covers every artifact family derived from the same
        content.  ``kinds`` restricts collection to the named families.

        Deletion is safe against concurrent readers by the store's own
        robustness contract: a reader racing a deletion sees a miss, never an
        error, and a writer racing it simply re-publishes the record.  A
        record that fails to unlink (already gone, permissions) is skipped.
        Returns the number of records evicted (also counted on
        :attr:`StoreStats.evicted`).
        """
        if self.read_only:
            return 0
        live = set(live_digests)
        objects = self.root / "objects"
        wanted = None if kinds is None else {
            _UNSAFE_PATH_CHARS.sub("_", kind) or "_" for kind in kinds}
        evicted = 0
        try:
            kind_dirs = sorted(path for path in objects.iterdir() if path.is_dir())
        except OSError:
            return 0
        for kind_dir in kind_dirs:
            if wanted is not None and kind_dir.name not in wanted:
                continue
            try:
                fan_dirs = sorted(path for path in kind_dir.iterdir()
                                  if path.is_dir())
            except OSError:
                continue
            for fan_dir in fan_dirs:
                try:
                    records = sorted(fan_dir.glob("*.json"))
                except OSError:
                    continue
                for record in records:
                    digest = record.name[:-len(".json")]
                    if digest in live or digest.split(".", 1)[0] in live:
                        continue
                    try:
                        record.unlink()
                    except OSError:
                        continue
                    evicted += 1
                try:
                    fan_dir.rmdir()  # best effort: only when emptied
                except OSError:
                    pass
        self.stats.evicted += evicted
        return evicted

    def note_invalid_payload(self) -> None:
        """Record that a consumer rejected a structurally valid record's
        payload (semantic corruption the envelope check cannot see).

        Reclassifies the load the consumer just made from hit to miss, so
        the counters reflect what the consumer actually got out of the store.
        """
        if self.stats.hits > 0:
            self.stats.hits -= 1
        self.stats.misses += 1
        self.stats.corrupt_records += 1
