"""Digest-keyed persistence for process-external analyses.

:class:`PersistentAnalysisCache` is the backend a
:class:`~repro.analysis.manager.FunctionAnalysisManager` consults on an
in-memory miss (the ``persistent=`` constructor argument).  It only handles
analyses whose results are **pure data** that survives a round-trip through
JSON — fingerprints and cost-model function sizes.  Object-graph analyses
(dominator trees, liveness, block plans) are deliberately *not* persistable:
their results alias live IR objects, which have no meaning in another
process.

Keys are content digests (:meth:`repro.ir.function.Function.content_digest`),
so there is no epoch bookkeeping on disk at all: a function whose body
changed gets a new digest and simply misses; the old record ages out unused.
Decoded payloads are validated strictly — a record that decodes into
something shaped wrong is reported to the store as corrupt and treated as a
miss, keeping the "bad record ⇒ cold rebuild, never an error" contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from ..analysis.fingerprint import _FINGERPRINT_BUCKETS, Fingerprint
from ..ir.function import Function
from .store import ArtifactStore

#: Store-kind prefix of all analysis artifacts.
ANALYSIS_KIND_PREFIX = "analysis."


@dataclass(frozen=True)
class _Codec:
    """JSON encode/decode pair of one persistable analysis result type."""

    encode: Callable[[Any], Any]
    decode: Callable[[Any], Any]


def _is_count(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def _encode_fingerprint(fingerprint: Fingerprint) -> Any:
    return {"counts": list(fingerprint.counts), "size": fingerprint.size}


def _decode_fingerprint(payload: Any) -> Fingerprint:
    if not isinstance(payload, dict):
        raise ValueError("fingerprint payload is not an object")
    counts = payload.get("counts")
    size = payload.get("size")
    if (not isinstance(counts, list)
            or len(counts) != len(_FINGERPRINT_BUCKETS)
            or not all(_is_count(count) for count in counts)
            or not _is_count(size)):
        raise ValueError("malformed fingerprint payload")
    return Fingerprint(tuple(counts), size)


def _decode_size(payload: Any) -> int:
    if not _is_count(payload):
        raise ValueError("malformed function-size payload")
    return payload


_CODECS = {
    "fingerprint": _Codec(_encode_fingerprint, _decode_fingerprint),
}

#: Shared codec of every ``function_size:<model>`` analysis (plain counts).
_SIZE_CODEC = _Codec(int, _decode_size)


class PersistentAnalysisCache:
    """Backs an analysis manager with an :class:`ArtifactStore`.

    Duck-typed backend interface consumed by
    :meth:`repro.analysis.manager.FunctionAnalysisManager.get`:
    ``load(name, function) -> (found, value)`` and
    ``save(name, function, value) -> bool``.  Analyses without a codec are
    transparently non-persistable — ``load`` declines without touching the
    store, so its counters only ever reflect real disk traffic.
    """

    def __init__(self, store: ArtifactStore) -> None:
        self.store = store

    # ------------------------------------------------------------- interface
    def persistable(self, name: str) -> bool:
        return self._codec(name) is not None

    def load(self, name: str, function: Function) -> Tuple[bool, Any]:
        codec = self._codec(name)
        if codec is None:
            return False, None
        payload = self.store.load(self._kind(name), function.content_digest())
        if payload is None:
            return False, None
        try:
            return True, codec.decode(payload)
        except (KeyError, TypeError, ValueError):
            self.store.note_invalid_payload()
            return False, None

    def save(self, name: str, function: Function, value: Any) -> bool:
        codec = self._codec(name)
        if codec is None:
            return False
        return self.store.store(self._kind(name), function.content_digest(),
                                codec.encode(value))

    # -------------------------------------------------------------- internal
    @staticmethod
    def _codec(name: str) -> Optional[_Codec]:
        codec = _CODECS.get(name)
        if codec is None and name.startswith("function_size:"):
            codec = _SIZE_CODEC
        return codec

    @staticmethod
    def _kind(name: str) -> str:
        return f"{ANALYSIS_KIND_PREFIX}{name}"
