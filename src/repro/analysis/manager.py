"""LLVM-style analysis managers: cached, invalidation-aware analyses.

The pipeline's consumers used to recompute every analysis at each use site —
``mem2reg``, the verifier and the SalSSA code generator each built their own
:class:`~repro.analysis.dominators.DominatorTree`, the cost model re-derived
function sizes on every merge attempt, and ``repro.search`` computed
fingerprints independently of everyone else.  The managers in this module give
all of them one memoized source of truth.

Staleness is detected *structurally*, not by convention: every cached result
is stamped with the owning function's ``mutation_epoch`` (a counter in the IR
layer bumped on any block/instruction/operand change, see
:meth:`repro.ir.function.Function.notify_mutated`).  A cache entry is valid
exactly while the stamp matches the live epoch, so a transform cannot forget
to invalidate — mutating the IR *is* the invalidation.

Preservation works the other way around: a transform that mutates a function
but provably keeps an analysis valid (e.g. DCE never touches terminators, so
the dominator tree survives) declares it with :meth:`mark_preserved`, which
re-stamps the cached entry to the current epoch.  The ``since`` argument
guards against resurrecting entries that were already stale before the
transform ran.

A manager can additionally be backed by a persistent tier (see
:class:`repro.persist.PersistentAnalysisCache`): analyses whose results are
pure data — fingerprints, function sizes — are then looked up on disk by the
function's content digest before being recomputed, so warm pipeline runs skip
even the first computation.  Object-graph analyses (dominator trees, liveness)
never round-trip through the store.

See ``docs/analysis.md`` for the full contract and how to register analyses,
and ``docs/persistence.md`` for the persistent tier.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Iterable, Optional, Tuple

from ..ir.function import Function
from ..ir.interpreter import block_plans
from .cfg import predecessor_map, reachable_blocks
from .dominators import DominatorTree
from .fingerprint import Fingerprint
from .liveness import compute_liveness

#: Names of the built-in analyses (also valid keys for preservation sets).
DOMTREE = "domtree"
PREDECESSORS = "predecessors"
REACHABLE = "reachable"
LIVENESS = "liveness"
FINGERPRINT = "fingerprint"
#: Per-block interpreter prologues (phi list + first non-phi index); shared by
#: the reference interpreter so repeated dynamic runs derive them once.
BLOCK_PLAN = "block_plan"

#: The analyses that depend only on CFG *shape* (blocks and branch targets).
#: A transform that inserts/removes non-terminator instructions without adding
#: or removing blocks or rewiring branches preserves exactly this set.
#: (``BLOCK_PLAN`` is *not* a member: inserting a phi keeps the shape but
#: changes the block prologue.)
CFG_ANALYSES: FrozenSet[str] = frozenset({DOMTREE, PREDECESSORS, REACHABLE})

#: Every built-in analysis name.
ALL_ANALYSES: FrozenSet[str] = CFG_ANALYSES | {LIVENESS, FINGERPRINT, BLOCK_PLAN}


def default_analyses() -> Dict[str, Callable[[Function], Any]]:
    """The built-in analysis registry (name -> pure compute function)."""
    return {
        DOMTREE: DominatorTree,
        PREDECESSORS: predecessor_map,
        REACHABLE: reachable_blocks,
        LIVENESS: compute_liveness,
        FINGERPRINT: Fingerprint.of,
        BLOCK_PLAN: block_plans,
    }


@dataclass
class AnalysisStats:
    """Cache behaviour counters of one analysis manager (or a merged set)."""

    #: Queries answered from the cache.
    hits: int = 0
    #: Queries that had to compute (no entry, or a stale one).
    misses: int = 0
    #: Stale entries dropped because the function's epoch had moved on.
    invalidations: int = 0
    #: Entries re-stamped by a transform's preservation declaration.
    preserved: int = 0
    #: Entries injected from outside (e.g. results a ``repro.parallel``
    #: worker pool computed) rather than queried into existence.
    primed: int = 0
    #: Misses per analysis name (what was actually recomputed, and how often).
    computed_by_analysis: Dict[str, int] = field(default_factory=dict)

    def record_hit(self) -> None:
        self.hits += 1

    def record_miss(self, name: str) -> None:
        self.misses += 1
        self.computed_by_analysis[name] = self.computed_by_analysis.get(name, 0) + 1

    @property
    def queries(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of queries answered without recomputation."""
        return self.hits / self.queries if self.queries else 0.0

    def merge(self, other: "AnalysisStats") -> "AnalysisStats":
        """Fold ``other``'s counters into this one (in place) and return self."""
        self.hits += other.hits
        self.misses += other.misses
        self.invalidations += other.invalidations
        self.preserved += other.preserved
        self.primed += other.primed
        for name, count in other.computed_by_analysis.items():
            self.computed_by_analysis[name] = \
                self.computed_by_analysis.get(name, 0) + count
        return self

    def as_dict(self) -> Dict[str, Any]:
        """A flat summary suitable for reporting / ``extra_info`` dumps."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "preserved": self.preserved,
            "primed": self.primed,
            "hit_rate": self.hit_rate,
            "computed_by_analysis": dict(self.computed_by_analysis),
        }


class FunctionAnalysisManager:
    """Memoizes per-function analyses, keyed on the function's mutation epoch.

    Results are cached per ``(function, analysis name)`` and stamped with the
    function's epoch at computation time.  A query whose stamp matches the
    live epoch is a hit; otherwise the stale entry is dropped and the analysis
    recomputed.  Analyses must be pure functions of the IR — the same inputs
    always produce equal results, which is what makes cached and uncached
    pipelines bit-identical.
    """

    def __init__(self, registry: Optional[Dict[str, Callable[[Function], Any]]] = None,
                 stats: Optional[AnalysisStats] = None,
                 persistent=None) -> None:
        self._registry = dict(registry) if registry is not None else default_analyses()
        self._cache: Dict[Function, Dict[str, Tuple[int, Any]]] = {}
        self.stats = stats or AnalysisStats()
        #: Optional persistent tier (duck-typed; see
        #: :class:`repro.persist.PersistentAnalysisCache`): consulted on an
        #: in-memory miss for analyses it declares persistable, and fed every
        #: freshly computed persistable result.  A persistent load counts as
        #: a hit here (nothing was recomputed); the store keeps its own
        #: hit/miss/load/store counters.
        self._persistent = persistent
        #: Optional repro.obs.MetricsRegistry (see :meth:`attach_metrics`):
        #: when attached, cache misses time their recomputation into the
        #: ``repro_analysis_compute_seconds`` timer family.
        self._metrics = None

    def attach_metrics(self, registry) -> None:
        """Record per-analysis recomputation timings into ``registry``.

        Purely observational — cached values, stats counters and results are
        identical with or without a registry; only misses pay one extra
        ``perf_counter`` pair.  Passing ``None`` detaches.
        """
        self._metrics = registry

    # ------------------------------------------------------------- registry
    def register(self, name: str, compute: Callable[[Function], Any],
                 overwrite: bool = False) -> None:
        """Register an analysis under ``name``; refuses silent replacement."""
        if not overwrite and name in self._registry:
            raise ValueError(f"analysis {name!r} already registered")
        self._registry[name] = compute

    def registered(self, name: str) -> bool:
        return name in self._registry

    # --------------------------------------------------------------- access
    def get(self, name: str, function: Function) -> Any:
        """The (possibly cached) result of analysis ``name`` on ``function``."""
        try:
            compute = self._registry[name]
        except KeyError:
            raise KeyError(
                f"unknown analysis {name!r}; registered: "
                f"{', '.join(sorted(self._registry))}") from None
        epoch = function.mutation_epoch
        per_function = self._cache.get(function)
        if per_function is None:
            per_function = self._cache[function] = {}
        else:
            entry = per_function.get(name)
            if entry is not None:
                if entry[0] == epoch:
                    self.stats.record_hit()
                    return entry[1]
                self.stats.invalidations += 1
        loaded = False
        if self._persistent is not None:
            loaded, value = self._persistent.load(name, function)
        if loaded:
            self.stats.record_hit()
        else:
            if self._metrics is not None:
                started = time.perf_counter()
                value = compute(function)
                self._metrics.timer(
                    "repro_analysis_compute_seconds",
                    help="Wall-clock of analysis recomputations, by analysis.",
                    analysis=name).observe(time.perf_counter() - started)
            else:
                value = compute(function)
            self.stats.record_miss(name)
            if self._persistent is not None:
                self._persistent.save(name, function, value)
        per_function[name] = (epoch, value)
        return value

    # Convenience accessors for the built-in analyses.
    def domtree(self, function: Function) -> DominatorTree:
        return self.get(DOMTREE, function)

    def predecessors(self, function: Function):
        return self.get(PREDECESSORS, function)

    def reachable(self, function: Function):
        return self.get(REACHABLE, function)

    def liveness(self, function: Function):
        return self.get(LIVENESS, function)

    def fingerprint(self, function: Function) -> Fingerprint:
        return self.get(FINGERPRINT, function)

    def block_plans(self, function: Function):
        return self.get(BLOCK_PLAN, function)

    def function_size(self, function: Function, size_model) -> int:
        """Cached :meth:`SizeModel.function_size` for one size model.

        Each size model gets its own analysis key (``function_size:<name>``),
        registered lazily, so several cost models can share one manager.
        """
        name = f"function_size:{size_model.name}"
        if name not in self._registry:
            self._registry[name] = size_model.function_size
        return self.get(name, function)

    # -------------------------------------------------------------- priming
    def prime(self, name: str, function: Function, value: Any) -> None:
        """Inject an externally computed result, stamped at the current epoch.

        The entry behaves exactly like one :meth:`get` computed — valid until
        the function mutates — but nothing is (re)computed and the persistent
        tier is not written (the caller decides where external results get
        persisted).  Used by ``repro.parallel`` to seed the cache with
        worker-pool results; the injected value must equal what the
        registered analysis would compute, or cached and uncached runs
        diverge.
        """
        if name not in self._registry:
            raise KeyError(f"unknown analysis {name!r}; registered: "
                           f"{', '.join(sorted(self._registry))}")
        per_function = self._cache.setdefault(function, {})
        per_function[name] = (function.mutation_epoch, value)
        self.stats.primed += 1

    # --------------------------------------------------------- invalidation
    def invalidate(self, function: Function,
                   names: Optional[Iterable[str]] = None) -> None:
        """Explicitly drop cached entries for ``function``.

        Normally unnecessary — epoch stamps make mutations self-invalidating —
        but useful when an analysis result was corrupted in place.
        """
        per_function = self._cache.get(function)
        if per_function is None:
            return
        if names is None:
            count = len(per_function)
            per_function.clear()
        else:
            count = 0
            for name in names:
                if per_function.pop(name, None) is not None:
                    count += 1
        self.stats.invalidations += count

    def mark_preserved(self, function: Function, names: Iterable[str],
                       since: Optional[int] = None) -> None:
        """Declare that the named analyses survived mutations of ``function``.

        Re-stamps matching cache entries to the current epoch.  ``since``
        should be the function's epoch when the declaring transform *started*:
        entries stamped with a different epoch were already stale before the
        transform ran and are left alone (restamping them would resurrect
        results from an unknown IR state).
        """
        per_function = self._cache.get(function)
        if per_function is None:
            return
        epoch = function.mutation_epoch
        for name in names:
            entry = per_function.get(name)
            if entry is None or entry[0] == epoch:
                continue
            if since is not None and entry[0] != since:
                continue
            per_function[name] = (epoch, entry[1])
            self.stats.preserved += 1

    def forget(self, function: Function) -> None:
        """Drop every cached entry of ``function`` (e.g. when it is deleted)."""
        self._cache.pop(function, None)

    def clear(self) -> None:
        """Drop the whole cache (stats are kept)."""
        self._cache.clear()

    # ------------------------------------------------------------ inspection
    def cached_analyses(self, function: Function) -> Tuple[str, ...]:
        """The analysis names currently cached for ``function`` (any epoch)."""
        return tuple(sorted(self._cache.get(function, ())))


class ModuleAnalysisManager:
    """Module-scoped facade owning one :class:`FunctionAnalysisManager`.

    The pipeline creates one per module and threads it through transforms,
    the merge pass, the candidate-search indexes and the verifier, so every
    consumer shares a single per-function analysis cache.  Module-level
    analyses can be added here later; today the function-level cache is the
    interesting part.
    """

    def __init__(self, module=None,
                 registry: Optional[Dict[str, Callable[[Function], Any]]] = None,
                 stats: Optional[AnalysisStats] = None,
                 persistent=None) -> None:
        self.module = module
        self.functions = FunctionAnalysisManager(registry=registry, stats=stats,
                                                 persistent=persistent)

    @property
    def stats(self) -> AnalysisStats:
        return self.functions.stats

    def attach_metrics(self, registry) -> None:
        """See :meth:`FunctionAnalysisManager.attach_metrics`."""
        self.functions.attach_metrics(registry)

    # Delegation: a ModuleAnalysisManager can be used wherever a function-level
    # manager is expected, so consumers accept either.
    def get(self, name: str, function: Function) -> Any:
        return self.functions.get(name, function)

    def register(self, name: str, compute: Callable[[Function], Any],
                 overwrite: bool = False) -> None:
        self.functions.register(name, compute, overwrite=overwrite)

    def domtree(self, function: Function) -> DominatorTree:
        return self.functions.domtree(function)

    def predecessors(self, function: Function):
        return self.functions.predecessors(function)

    def reachable(self, function: Function):
        return self.functions.reachable(function)

    def liveness(self, function: Function):
        return self.functions.liveness(function)

    def fingerprint(self, function: Function) -> Fingerprint:
        return self.functions.fingerprint(function)

    def block_plans(self, function: Function):
        return self.functions.block_plans(function)

    def function_size(self, function: Function, size_model) -> int:
        return self.functions.function_size(function, size_model)

    def prime(self, name: str, function: Function, value: Any) -> None:
        self.functions.prime(name, function, value)

    def invalidate(self, function: Function,
                   names: Optional[Iterable[str]] = None) -> None:
        self.functions.invalidate(function, names)

    def mark_preserved(self, function: Function, names: Iterable[str],
                       since: Optional[int] = None) -> None:
        self.functions.mark_preserved(function, names, since=since)

    def forget(self, function: Function) -> None:
        self.functions.forget(function)

    def clear(self) -> None:
        self.functions.clear()
