"""Global construction counters for the expensive analyses.

The analysis manager (see :mod:`repro.analysis.manager`) exists to avoid
recomputing analyses; these counters are how that claim is *checked* rather
than assumed.  Every expensive analysis entry point
(:class:`~repro.analysis.dominators.DominatorTree`,
:meth:`~repro.analysis.fingerprint.Fingerprint.of`,
:func:`~repro.analysis.liveness.compute_liveness`, the CFG maps) increments a
named counter on construction; tests and ``benchmarks/bench_analysis_cache.py``
snapshot the counters around a workload and compare cached vs. uncached runs.

The counters are process-global and monotonic — always measure deltas with
:func:`track_constructions`, never absolute values.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from typing import Dict, Iterator

_COUNTS: Counter = Counter()


def count_construction(name: str) -> None:
    """Record one construction of the named analysis."""
    _COUNTS[name] += 1


def construction_counts() -> Dict[str, int]:
    """A snapshot of all counters since process start."""
    return dict(_COUNTS)


class ConstructionTracker:
    """Computes per-analysis construction deltas against a baseline snapshot."""

    def __init__(self) -> None:
        self._baseline = Counter(_COUNTS)

    def delta(self, name: str = "") -> "int | Dict[str, int]":
        """Constructions since the snapshot, for one analysis or all of them."""
        if name:
            return _COUNTS[name] - self._baseline[name]
        return {key: count - self._baseline[key]
                for key, count in _COUNTS.items()
                if count != self._baseline[key]}


@contextmanager
def track_constructions() -> Iterator[ConstructionTracker]:
    """Context manager yielding a tracker snapshotted at entry.

    Usage::

        with track_constructions() as tracker:
            run_workload()
        assert tracker.delta("DominatorTree") == expected
    """
    yield ConstructionTracker()
