"""Dominator tree and dominance frontier computation.

The implementation follows Cooper, Harvey & Kennedy, *A Simple, Fast Dominance
Algorithm* — the same approach LLVM derives from.  Dominance information is
required by

* the IR verifier (SSA dominance property, paper §4.3),
* mem2reg / SSA construction (phi placement at iterated dominance frontiers),
* SalSSA's SSA repair and phi-node coalescing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.basic_block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Instruction
from .cfg import predecessor_map, reverse_postorder
from .counters import count_construction


class DominatorTree:
    """Immediate-dominator tree for the reachable blocks of a function."""

    def __init__(self, function: Function) -> None:
        count_construction("DominatorTree")
        self.function = function
        self.rpo: List[BasicBlock] = reverse_postorder(function)
        self._order: Dict[BasicBlock, int] = {b: i for i, b in enumerate(self.rpo)}
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self._children: Dict[BasicBlock, List[BasicBlock]] = {}
        self._frontier: Optional[Dict[BasicBlock, Set[BasicBlock]]] = None
        self._compute()

    # ------------------------------------------------------------- queries
    def immediate_dominator(self, block: BasicBlock) -> Optional[BasicBlock]:
        return self.idom.get(block)

    def children(self, block: BasicBlock) -> List[BasicBlock]:
        return self._children.get(block, [])

    def is_reachable(self, block: BasicBlock) -> bool:
        return block in self._order

    def dominates_block(self, dominator: BasicBlock, block: BasicBlock) -> bool:
        """True if ``dominator`` dominates ``block`` (reflexively)."""
        if dominator is block:
            return True
        if dominator not in self._order or block not in self._order:
            return False
        current: Optional[BasicBlock] = self.idom.get(block)
        while current is not None:
            if current is dominator:
                return True
            if current is self.idom.get(current):
                break
            current = self.idom.get(current)
        return False

    def dominates(self, definition: Instruction, use: Instruction) -> bool:
        """True if instruction ``definition`` dominates instruction ``use``."""
        def_block, use_block = definition.parent, use.parent
        if def_block is None or use_block is None:
            return False
        if def_block is use_block:
            return def_block.instructions.index(definition) < use_block.instructions.index(use)
        return self.dominates_block(def_block, use_block)

    def dominance_frontier(self) -> Dict[BasicBlock, Set[BasicBlock]]:
        """The dominance frontier of every reachable block.

        Memoized on the tree instance: a tree describes one CFG snapshot, so
        the frontier cannot change for as long as the tree itself is valid
        (repeated phi-placement queries used to recompute it per variable).
        """
        if self._frontier is not None:
            return self._frontier
        frontier: Dict[BasicBlock, Set[BasicBlock]] = {b: set() for b in self.rpo}
        preds = predecessor_map(self.function)
        for block in self.rpo:
            block_preds = [p for p in preds.get(block, []) if p in self._order]
            if len(block_preds) < 2:
                continue
            for pred in block_preds:
                runner: Optional[BasicBlock] = pred
                while runner is not None and runner is not self.idom.get(block):
                    frontier[runner].add(block)
                    if runner is self.idom.get(runner):
                        break
                    runner = self.idom.get(runner)
        self._frontier = frontier
        return frontier

    def iterated_dominance_frontier(self,
                                    blocks: Set[BasicBlock]) -> List[BasicBlock]:
        """The iterated dominance frontier of a set of definition blocks.

        This is the classic phi-placement set of Cytron et al.: phi-nodes for a
        variable defined in ``blocks`` are needed exactly at this set.
        Returned in reverse postorder: phi *placement* order names the
        inserted phi-nodes, so it must be a function of the CFG alone — set
        iteration order (object identity) would make two structurally
        identical functions get differently numbered phi webs.
        """
        frontier = self.dominance_frontier()
        result: Set[BasicBlock] = set()
        worklist = [b for b in blocks if b in self._order]
        seen = set(worklist)
        while worklist:
            block = worklist.pop()
            for candidate in frontier.get(block, ()):
                if candidate not in result:
                    result.add(candidate)
                    if candidate not in seen:
                        seen.add(candidate)
                        worklist.append(candidate)
        return [block for block in self.rpo if block in result]

    # ------------------------------------------------------------ internals
    def _compute(self) -> None:
        if not self.rpo:
            return
        entry = self.rpo[0]
        preds = predecessor_map(self.function)
        idom: Dict[BasicBlock, Optional[BasicBlock]] = {entry: entry}

        changed = True
        while changed:
            changed = False
            for block in self.rpo[1:]:
                candidates = [p for p in preds.get(block, []) if p in idom and p in self._order]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for other in candidates[1:]:
                    new_idom = self._intersect(idom, other, new_idom)
                if idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True

        idom[entry] = None
        self.idom = idom
        self._children = {block: [] for block in self.rpo}
        for block, dominator in idom.items():
            if dominator is not None:
                self._children.setdefault(dominator, []).append(block)

    def _intersect(self, idom, a: BasicBlock, b: BasicBlock) -> BasicBlock:
        finger_a, finger_b = a, b
        while finger_a is not finger_b:
            while self._order[finger_a] > self._order[finger_b]:
                finger_a = idom[finger_a] if idom[finger_a] is not None else finger_a
                if finger_a is None:
                    break
            while self._order[finger_b] > self._order[finger_a]:
                finger_b = idom[finger_b] if idom[finger_b] is not None else finger_b
                if finger_b is None:
                    break
        return finger_a

    def dominator_tree_preorder(self) -> List[BasicBlock]:
        """Blocks in a pre-order walk of the dominator tree (entry first)."""
        if not self.rpo:
            return []
        order: List[BasicBlock] = []
        stack = [self.rpo[0]]
        while stack:
            block = stack.pop()
            order.append(block)
            stack.extend(reversed(self.children(block)))
        return order
