"""Code-size models.

The paper measures the size of the final linked object file.  Without a real
back end we estimate object-code size with a deterministic per-instruction
byte-cost model.  Two targets are provided, mirroring the paper's evaluation
platforms: an x86-64-like target (SPEC experiments) and a Thumb-like target
(MiBench experiments) whose compact 16/32-bit encodings make every IR
instruction cheaper but calls and branches relatively more expensive.

The same model doubles as the *profitability cost model* input used by both
FMSA and SalSSA (paper §5.3 notes they share one cost model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..ir.function import Function
from ..ir.instructions import Instruction, PhiInst
from ..ir.module import Module


@dataclass(frozen=True)
class SizeModel:
    """A per-opcode byte-cost model approximating final object size."""

    name: str
    default_cost: int
    costs: Dict[str, int]
    function_overhead: int

    def instruction_cost(self, inst: Instruction) -> int:
        """Estimated encoded size of one instruction, in bytes."""
        if isinstance(inst, PhiInst):
            # Phi-nodes lower to copies on predecessor edges; approximate with
            # one move per incoming edge beyond the first.
            per_edge = self.costs.get("phi", 2)
            return per_edge * max(1, inst.num_incoming() - 1)
        return self.costs.get(inst.opcode, self.default_cost)

    def function_size(self, function: Function) -> int:
        """Estimated object-code bytes contributed by a function."""
        if function.is_declaration():
            return 0
        total = self.function_overhead
        for inst in function.instructions():
            total += self.instruction_cost(inst)
        return total

    def module_size(self, module: Module) -> int:
        """Estimated object-code bytes of all defined functions in a module."""
        return sum(self.function_size(f) for f in module.defined_functions())


#: x86-64-flavoured byte costs (variable-length encoding, rich addressing).
X86_64 = SizeModel(
    name="x86_64",
    default_cost=4,
    costs={
        "add": 3, "sub": 3, "mul": 4, "sdiv": 6, "udiv": 6, "srem": 6, "urem": 6,
        "fadd": 4, "fsub": 4, "fmul": 4, "fdiv": 5, "frem": 8,
        "and": 3, "or": 3, "xor": 3, "shl": 3, "lshr": 3, "ashr": 3,
        "icmp": 3, "fcmp": 4, "select": 6,
        "trunc": 2, "zext": 3, "sext": 3, "bitcast": 0, "ptrtoint": 2, "inttoptr": 2,
        "fptrunc": 4, "fpext": 4, "fptosi": 4, "fptoui": 4, "sitofp": 4, "uitofp": 4,
        "alloca": 4, "load": 4, "store": 4, "getelementptr": 4,
        "call": 5, "invoke": 9, "landingpad": 8,
        "br": 2, "switch": 8, "ret": 2, "unreachable": 1,
        "phi": 3,
    },
    function_overhead=12,
)

#: ARM-Thumb-flavoured byte costs (mostly 2-byte encodings, pricier calls).
ARM_THUMB = SizeModel(
    name="arm_thumb",
    default_cost=2,
    costs={
        "add": 2, "sub": 2, "mul": 2, "sdiv": 4, "udiv": 4, "srem": 6, "urem": 6,
        "fadd": 4, "fsub": 4, "fmul": 4, "fdiv": 4, "frem": 8,
        "and": 2, "or": 2, "xor": 2, "shl": 2, "lshr": 2, "ashr": 2,
        "icmp": 2, "fcmp": 4, "select": 4,
        "trunc": 2, "zext": 2, "sext": 2, "bitcast": 0, "ptrtoint": 2, "inttoptr": 2,
        "fptrunc": 4, "fpext": 4, "fptosi": 4, "fptoui": 4, "sitofp": 4, "uitofp": 4,
        "alloca": 2, "load": 2, "store": 2, "getelementptr": 4,
        "call": 4, "invoke": 8, "landingpad": 8,
        "br": 2, "switch": 6, "ret": 2, "unreachable": 2,
        "phi": 2,
    },
    function_overhead=8,
)

TARGETS: Dict[str, SizeModel] = {"x86_64": X86_64, "arm_thumb": ARM_THUMB}


def get_target(name: str) -> SizeModel:
    """Look up a size model by target name (``x86_64`` or ``arm_thumb``)."""
    try:
        return TARGETS[name]
    except KeyError:
        raise KeyError(f"unknown target {name!r}; known: {sorted(TARGETS)}") from None


def instruction_count(function: Function) -> int:
    """Number of IR instructions in a function (the paper's Figure 5 metric)."""
    return function.num_instructions()


def module_instruction_count(module: Module) -> int:
    """Number of IR instructions over all defined functions of a module."""
    return module.num_instructions()
