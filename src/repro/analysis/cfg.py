"""Control-flow graph utilities.

These helpers provide the traversal orders and reachability queries used by
the dominator analysis, the transforms and the merging code generators.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from ..ir.basic_block import BasicBlock
from ..ir.function import Function
from .counters import count_construction


def successors(block: BasicBlock) -> List[BasicBlock]:
    """The successor blocks of ``block`` (duplicates removed, order kept)."""
    result: List[BasicBlock] = []
    for successor in block.successors():
        if successor not in result:
            result.append(successor)
    return result


def predecessors(block: BasicBlock) -> List[BasicBlock]:
    """The predecessor blocks of ``block``."""
    return block.predecessors()


def predecessor_map(function: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    """Map every block of ``function`` to its predecessors in one pass."""
    count_construction("predecessor_map")
    preds: Dict[BasicBlock, List[BasicBlock]] = {block: [] for block in function.blocks}
    for block in function.blocks:
        for successor in successors(block):
            if successor in preds and block not in preds[successor]:
                preds[successor].append(block)
    return preds


def reachable_blocks(function: Function) -> Set[BasicBlock]:
    """Blocks reachable from the entry block."""
    count_construction("reachable_blocks")
    entry = function.entry_block
    if entry is None:
        return set()
    seen: Set[BasicBlock] = set()
    worklist = [entry]
    while worklist:
        block = worklist.pop()
        if block in seen:
            continue
        seen.add(block)
        worklist.extend(successors(block))
    return seen


def reverse_postorder(function: Function) -> List[BasicBlock]:
    """Blocks in reverse post-order (a topological-ish order good for dataflow)."""
    entry = function.entry_block
    if entry is None:
        return []
    visited: Set[BasicBlock] = set()
    postorder: List[BasicBlock] = []

    # Iterative DFS to avoid recursion limits on large generated functions.
    stack: List[tuple] = [(entry, iter(successors(entry)))]
    visited.add(entry)
    while stack:
        block, children = stack[-1]
        advanced = False
        for child in children:
            if child not in visited:
                visited.add(child)
                stack.append((child, iter(successors(child))))
                advanced = True
                break
        if not advanced:
            postorder.append(block)
            stack.pop()
    postorder.reverse()
    return postorder


def postorder(function: Function) -> List[BasicBlock]:
    """Blocks in post-order."""
    order = reverse_postorder(function)
    order.reverse()
    return order


def edges(function: Function) -> List[tuple]:
    """All CFG edges as ``(source, destination)`` pairs."""
    result = []
    for block in function.blocks:
        for successor in successors(block):
            result.append((block, successor))
    return result


def is_critical_edge(source: BasicBlock, destination: BasicBlock) -> bool:
    """True if the edge has multiple successors at the source and multiple
    predecessors at the destination (relevant when placing copies/stores)."""
    return len(successors(source)) > 1 and len(predecessors(destination)) > 1
