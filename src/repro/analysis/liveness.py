"""Live-variable analysis over the SSA IR.

Phi-node coalescing (paper §4.4) pairs disjoint definitions so as to maximise
the overlap of their live ranges/user blocks, keeping register pressure low.
This module provides the backward dataflow analysis used for that heuristic
and for the register-pressure statistics reported by the harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from ..ir.basic_block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Instruction, PhiInst
from ..ir.values import Value
from .cfg import predecessor_map, postorder
from .counters import count_construction


@dataclass
class LivenessInfo:
    """Per-block live-in / live-out sets of instruction-defined values."""

    live_in: Dict[BasicBlock, Set[Instruction]] = field(default_factory=dict)
    live_out: Dict[BasicBlock, Set[Instruction]] = field(default_factory=dict)

    def live_across(self, value: Instruction) -> int:
        """Number of blocks whose live-out set contains ``value``."""
        return sum(1 for values in self.live_out.values() if value in values)

    def max_pressure(self) -> int:
        """Upper bound on simultaneous live values (block-granular)."""
        if not self.live_in:
            return 0
        return max(len(values) for values in self.live_in.values())


def compute_liveness(function: Function) -> LivenessInfo:
    """Compute live-in/live-out sets for all blocks of ``function``.

    Only instruction results are tracked (arguments and constants are always
    available and do not contribute to the coalescing heuristic).
    """
    count_construction("LivenessInfo")
    use: Dict[BasicBlock, Set[Instruction]] = {}
    defs: Dict[BasicBlock, Set[Instruction]] = {}
    phi_uses: Dict[BasicBlock, Set[Instruction]] = {block: set() for block in function.blocks}

    for block in function.blocks:
        block_use: Set[Instruction] = set()
        block_def: Set[Instruction] = set()
        for inst in block.instructions:
            if isinstance(inst, PhiInst):
                # Phi operands are live at the end of the incoming block, not here.
                for value, incoming_block in inst.incoming():
                    if isinstance(value, Instruction) and isinstance(incoming_block, BasicBlock):
                        phi_uses.setdefault(incoming_block, set()).add(value)
                block_def.add(inst)
                continue
            for operand in inst.operand_values():
                if isinstance(operand, Instruction) and operand not in block_def:
                    block_use.add(operand)
            if inst.produces_value():
                block_def.add(inst)
        use[block] = block_use
        defs[block] = block_def

    live_in: Dict[BasicBlock, Set[Instruction]] = {b: set() for b in function.blocks}
    live_out: Dict[BasicBlock, Set[Instruction]] = {b: set() for b in function.blocks}

    changed = True
    order = postorder(function)
    while changed:
        changed = False
        for block in order:
            out: Set[Instruction] = set(phi_uses.get(block, ()))
            for successor in block.successors():
                out |= live_in.get(successor, set())
            new_in = use[block] | (out - defs[block])
            if out != live_out[block] or new_in != live_in[block]:
                live_out[block] = out
                live_in[block] = new_in
                changed = True
    return LivenessInfo(live_in, live_out)


def user_blocks(value: Value) -> Set[BasicBlock]:
    """The set of blocks containing users of ``value`` (paper's ``UB(d)``)."""
    blocks: Set[BasicBlock] = set()
    for user in value.users():
        if isinstance(user, Instruction) and user.parent is not None:
            blocks.add(user.parent)
    return blocks
