"""Function fingerprints and candidate ranking.

Both FMSA and SalSSA decide *which* pairs of functions to attempt to merge
with a fingerprint-based ranking (paper §5.1): each function is summarised by
a small vector of opcode frequencies, candidate pairs are ranked by fingerprint
similarity, and the pass explores the top ``t`` candidates per function (the
*exploration threshold*).

The fingerprint is deliberately cheap — it must be computed for every function
in the module — and conservative: it never rejects a pair outright, it only
orders the search.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..ir.function import Function
from ..ir.instructions import (
    BinaryInst,
    CastInst,
    CmpInst,
    Instruction,
    PhiInst,
)
from ..ir.module import Module
from .counters import count_construction

#: The opcode buckets used by the fingerprint vector.  Related opcodes share a
#: bucket so that small rewrites (e.g. ``add`` vs ``sub``) still rank close.
_FINGERPRINT_BUCKETS: Tuple[str, ...] = (
    "int_arith", "float_arith", "bitwise", "shift", "cmp", "cast",
    "load", "store", "alloca", "gep", "call", "invoke", "landingpad",
    "phi", "select", "br", "switch", "ret", "other",
)

_BUCKET_BY_OPCODE: Dict[str, str] = {}
for op in ("add", "sub", "mul", "sdiv", "udiv", "srem", "urem"):
    _BUCKET_BY_OPCODE[op] = "int_arith"
for op in ("fadd", "fsub", "fmul", "fdiv", "frem"):
    _BUCKET_BY_OPCODE[op] = "float_arith"
for op in ("and", "or", "xor"):
    _BUCKET_BY_OPCODE[op] = "bitwise"
for op in ("shl", "lshr", "ashr"):
    _BUCKET_BY_OPCODE[op] = "shift"
for op in ("icmp", "fcmp"):
    _BUCKET_BY_OPCODE[op] = "cmp"
for op in ("trunc", "zext", "sext", "fptrunc", "fpext", "fptosi", "fptoui",
           "sitofp", "uitofp", "ptrtoint", "inttoptr", "bitcast"):
    _BUCKET_BY_OPCODE[op] = "cast"
for op in ("load", "store", "alloca", "call", "invoke", "landingpad", "phi",
           "select", "br", "switch", "ret"):
    _BUCKET_BY_OPCODE[op] = op
_BUCKET_BY_OPCODE["getelementptr"] = "gep"


@dataclass(frozen=True)
class Fingerprint:
    """An opcode-frequency summary of a function."""

    counts: Tuple[int, ...]
    size: int

    @classmethod
    def of(cls, function: Function) -> "Fingerprint":
        count_construction("Fingerprint")
        counts = {bucket: 0 for bucket in _FINGERPRINT_BUCKETS}
        size = 0
        for inst in function.instructions():
            size += 1
            bucket = _BUCKET_BY_OPCODE.get(inst.opcode, "other")
            counts[bucket] += 1
        return cls(tuple(counts[bucket] for bucket in _FINGERPRINT_BUCKETS), size)

    def distance(self, other: "Fingerprint") -> int:
        """Manhattan distance between two fingerprints (lower = more similar)."""
        return sum(abs(a - b) for a, b in zip(self.counts, other.counts))

    def similarity(self, other: "Fingerprint") -> float:
        """A normalised similarity in [0, 1]; 1 means identical fingerprints."""
        total = self.size + other.size
        if total == 0:
            return 1.0
        return 1.0 - self.distance(other) / total


def opcode_sequence(function: Function) -> Tuple[str, ...]:
    """The function's bucketised opcode stream in block order.

    This is the raw material for order-sensitive signatures (e.g. the MinHash
    shingles used by ``repro.search``): two functions with permuted but
    otherwise identical instruction mixes share a fingerprint yet have
    different opcode sequences.
    """
    return tuple(_BUCKET_BY_OPCODE.get(inst.opcode, "other")
                 for inst in function.instructions())


def opcode_shingles(function: Function, k: int = 3) -> frozenset:
    """The set of ``k``-grams of the bucketised opcode sequence.

    Functions shorter than ``k`` contribute their whole sequence as a single
    shingle so every candidate function has a non-empty shingle set.
    """
    sequence = opcode_sequence(function)
    k = max(1, k)
    if len(sequence) <= k:
        return frozenset((sequence,)) if sequence else frozenset()
    return frozenset(sequence[i:i + k] for i in range(len(sequence) - k + 1))


@dataclass
class RankedCandidate:
    """One candidate merge partner for a function, with its ranking score."""

    function: Function
    distance: int
    similarity: float


def rank_candidates(fingerprint: Fingerprint,
                    candidates: "Iterable[Tuple[Function, Fingerprint]]",
                    threshold: int,
                    similarity_floor: float = 0.0) -> List[RankedCandidate]:
    """Top-``threshold`` of ``candidates`` by distance to ``fingerprint``.

    The shared ranking core of :class:`CandidateRanking` and every
    ``repro.search`` index: candidates are ordered by the seed's
    ``(distance, -size, name)`` key — ``nsmallest`` over that key reproduces
    the former full sort's ordering without sorting the whole population.
    """
    counts = fingerprint.counts
    scored = []
    for other, other_fingerprint in candidates:
        # Inlined Fingerprint.distance/.similarity: the method-call overhead
        # dominates this hot loop under CPython.  Keep in sync with them.
        distance = sum(abs(a - b)
                       for a, b in zip(counts, other_fingerprint.counts))
        if similarity_floor > 0.0:
            total = fingerprint.size + other_fingerprint.size
            similarity = 1.0 if total == 0 else 1.0 - distance / total
            if similarity < similarity_floor:
                continue
        scored.append((distance, -other_fingerprint.size, other.name,
                       other, other_fingerprint))
    top = heapq.nsmallest(threshold, scored, key=lambda item: item[:3])
    return [RankedCandidate(other, distance,
                            fingerprint.similarity(other_fingerprint))
            for distance, _, _, other, other_fingerprint in top]


class CandidateRanking:
    """Ranks candidate merge partners for every function of a module.

    The ranking mirrors the FMSA strategy the paper reuses: functions are
    processed from largest to smallest (§5.5), and for each function the ``t``
    most similar remaining functions (by fingerprint distance) are attempted.
    """

    def __init__(self, module: Module, min_size: int = 2) -> None:
        self.module = module
        self.min_size = min_size
        self.fingerprints: Dict[Function, Fingerprint] = {}
        for function in module.defined_functions():
            if function.num_instructions() >= min_size:
                self.fingerprints[function] = Fingerprint.of(function)

    def functions_by_size(self) -> List[Function]:
        """Candidate functions ordered from largest to smallest."""
        return sorted(self.fingerprints, key=lambda f: -self.fingerprints[f].size)

    def candidates_for(self, function: Function, threshold: int,
                       exclude: Optional[set] = None) -> List[RankedCandidate]:
        """The top-``threshold`` most similar candidates for ``function``."""
        fingerprint = self.fingerprints.get(function)
        if fingerprint is None or threshold <= 0:
            return []
        exclude = exclude or set()
        return rank_candidates(
            fingerprint,
            ((other, other_fingerprint)
             for other, other_fingerprint in self.fingerprints.items()
             if other is not function and other not in exclude),
            threshold)

    def remove(self, function: Function) -> None:
        """Forget a function (e.g. once it has been merged away)."""
        self.fingerprints.pop(function, None)

    def update(self, function: Function) -> None:
        """Recompute the fingerprint of a (new or rewritten) function."""
        if function.num_instructions() >= self.min_size:
            self.fingerprints[function] = Fingerprint.of(function)
        else:
            self.fingerprints.pop(function, None)
