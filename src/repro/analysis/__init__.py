"""Analyses over the repro IR: CFG utilities, dominators, liveness,
function fingerprints, code-size models and the cached analysis managers."""

from .cfg import (
    edges,
    is_critical_edge,
    postorder,
    predecessor_map,
    predecessors,
    reachable_blocks,
    reverse_postorder,
    successors,
)
from .counters import (
    construction_counts,
    count_construction,
    track_constructions,
)
from .dominators import DominatorTree
from .liveness import LivenessInfo, compute_liveness, user_blocks
from .manager import (
    ALL_ANALYSES,
    BLOCK_PLAN,
    CFG_ANALYSES,
    FINGERPRINT,
    AnalysisStats,
    FunctionAnalysisManager,
    ModuleAnalysisManager,
    default_analyses,
)
from .fingerprint import CandidateRanking, Fingerprint, RankedCandidate
from .size_model import (
    ARM_THUMB,
    SizeModel,
    TARGETS,
    X86_64,
    get_target,
    instruction_count,
    module_instruction_count,
)

__all__ = [name for name in dir() if not name.startswith("_")]
