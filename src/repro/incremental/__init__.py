"""repro.incremental — delta-driven re-merging for live modules.

The batch pipeline re-ranks and re-merges everything on every run; this
package makes the second and later runs cost near-O(|delta|): a
:class:`ModuleDelta` names what changed (detected via ``content_digest``
diffs or supplied explicitly), a :class:`PipelineState` carries the pristine
normalized functions, the live candidate index, the memoized attempt cache
and the previous report across runs, and
:func:`repro.harness.run_pipeline_incremental` replays the merge pass over
that state — re-scoring only pairs with a dirty endpoint and re-running
codegen only for merges the cache cannot splice — while staying
**bit-identical** to a cold run over the same module.

See ``docs/incremental.md`` for the delta lifecycle and the state-snapshot
format.
"""

from .cache import AttemptCache, AttemptOutcome
from .delta import ModuleDelta, copy_module, detect_delta, remap_references, \
    replace_function_body
from .state import IncrementalConfig, PipelineState, STATE_KIND, \
    STATE_SCHEMA, load_state, save_state
from .stats import IncrementalStats

__all__ = [
    "AttemptCache",
    "AttemptOutcome",
    "IncrementalConfig",
    "IncrementalStats",
    "ModuleDelta",
    "PipelineState",
    "STATE_KIND",
    "STATE_SCHEMA",
    "copy_module",
    "detect_delta",
    "load_state",
    "remap_references",
    "replace_function_body",
    "save_state",
]
