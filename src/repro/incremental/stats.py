"""Per-delta counters of the incremental pipeline.

One :class:`IncrementalStats` is produced by every
:func:`repro.harness.run_pipeline_incremental` call and folded into the
run's metrics registry by :func:`repro.obs.observe_incremental_stats`
(``repro_incremental_*`` families).  Like the other stats dataclasses it is
purely observational — the merge report is bit-identical whatever the
counters say.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass
class IncrementalStats:
    """What one delta cost, and what the previous state paid for."""

    #: 0 for the bootstrap run, then 1, 2, ... per applied delta.
    delta_index: int = 0
    functions_added: int = 0
    functions_changed: int = 0
    functions_removed: int = 0
    #: Candidate pairs whose outcome was replayed from the attempt cache.
    pairs_reused: int = 0
    #: Candidate pairs actually re-aligned and re-evaluated this run (at
    #: least one endpoint's content was new to the cache).
    pairs_rescored: int = 0
    #: Committed merges reconstructed from a cached merged body (no codegen).
    merges_spliced: int = 0
    #: Committed merges whose body had to be regenerated this run.
    merges_recomputed: int = 0
    #: Total attempts the replayed ranking loop evaluated (= the cold run's
    #: ``MergeReport.attempts`` — replay preserves the loop bit for bit).
    attempts: int = 0
    #: Attempt-cache entries evicted during this run (LRU cap + compaction).
    cache_evicted: int = 0
    wall_seconds: float = 0.0

    @property
    def dirty_functions(self) -> int:
        """Delta members that carried new content into this run."""
        return self.functions_added + self.functions_changed

    @property
    def pair_reuse_fraction(self) -> float:
        """Fraction of evaluated pairs served from the attempt cache."""
        total = self.pairs_reused + self.pairs_rescored
        return self.pairs_reused / total if total else 0.0

    @property
    def rescore_fraction(self) -> float:
        """Fraction of evaluated pairs that needed real re-scoring."""
        total = self.pairs_reused + self.pairs_rescored
        return self.pairs_rescored / total if total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """A flat summary suitable for reporting / ``extra_info`` dumps."""
        return {
            "delta_index": self.delta_index,
            "functions_added": self.functions_added,
            "functions_changed": self.functions_changed,
            "functions_removed": self.functions_removed,
            "dirty_functions": self.dirty_functions,
            "pairs_reused": self.pairs_reused,
            "pairs_rescored": self.pairs_rescored,
            "pair_reuse_fraction": self.pair_reuse_fraction,
            "merges_spliced": self.merges_spliced,
            "merges_recomputed": self.merges_recomputed,
            "attempts": self.attempts,
            "cache_evicted": self.cache_evicted,
            "wall_seconds": self.wall_seconds,
        }
