"""Module deltas: what changed between two versions of a live module.

A :class:`ModuleDelta` names the functions a new module version added,
changed or removed relative to the previous :class:`~repro.incremental.
PipelineState`.  Deltas are usually *detected* — per-function
``content_digest`` comparison, which the digest memo makes O(1) for every
function a live module did not touch — but a caller that already knows what
it edited can supply one explicitly and skip detection entirely.

The module also hosts the two structural helpers the delta machinery and its
tests share: :func:`replace_function_body` (in-place body swap, so a changed
function keeps its identity and goes through ``CandidateIndex.update``) and
:func:`copy_module` (a deep, by-name-remapped module copy — the reference
"cold" module the parity tests re-run from scratch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..ir.basic_block import BasicBlock
from ..ir.function import Function
from ..ir.module import Module
from ..ir.values import GlobalVariable, Value


@dataclass(frozen=True)
class ModuleDelta:
    """Function names added / changed / removed by one module edit."""

    added: Tuple[str, ...] = field(default_factory=tuple)
    changed: Tuple[str, ...] = field(default_factory=tuple)
    removed: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def dirty(self) -> Tuple[str, ...]:
        """Names whose content is new to the pipeline (added + changed)."""
        return self.added + self.changed

    def is_empty(self) -> bool:
        return not (self.added or self.changed or self.removed)

    def __len__(self) -> int:
        return len(self.added) + len(self.changed) + len(self.removed)


def detect_delta(module: Module, known_digests: Dict[str, str]) -> ModuleDelta:
    """Diff ``module``'s defined functions against previously seen digests.

    ``known_digests`` maps function name → the ``content_digest`` the
    pipeline last ingested under that name (the *source* digest, i.e. of the
    un-normalized input).  Digest calls are memoized per mutation epoch, so
    for a live module only the functions the caller actually touched are
    re-rendered — the diff itself is near-O(|delta|).
    """
    defined = {f.name: f for f in module.defined_functions()}
    added = tuple(name for name in defined if name not in known_digests)
    removed = tuple(name for name in known_digests if name not in defined)
    changed = tuple(
        name for name, function in defined.items()
        if name in known_digests
        and function.content_digest() != known_digests[name])
    return ModuleDelta(added=added, changed=changed, removed=removed)


def replace_function_body(target: Function, source: Function) -> None:
    """Replace ``target``'s body with a deep copy of ``source``'s.

    Requires matching function types (same arguments).  ``target`` keeps its
    identity — every existing reference (index membership, call operands in
    other functions) stays valid, and its mutation epoch advances so all
    memoized digests and cached analyses invalidate naturally.
    """
    if target.function_type != source.function_type:
        raise ValueError(
            f"cannot splice body of @{source.name} into @{target.name}: "
            f"function types differ")
    for block in list(target.blocks):
        block.erase_from_parent()
    value_map: Dict[Value, Value] = {}
    for source_arg, target_arg in zip(source.args, target.args):
        value_map[source_arg] = target_arg
    for block in source.blocks:
        new_block = BasicBlock(block.name)
        target.add_block(new_block)
        value_map[block] = new_block
    for block in source.blocks:
        new_block = value_map[block]
        for inst in block.instructions:
            copied = inst.clone()
            copied.name = inst.name
            new_block.append(copied)
            value_map[inst] = copied
    for block in source.blocks:
        for inst in block.instructions:
            copied = value_map[inst]
            for index, operand in enumerate(inst.operands):
                if operand is None:
                    continue
                copied.set_operand(index, value_map.get(operand, operand))


def copy_module(module: Module) -> Module:
    """A deep copy of ``module`` with all cross-references remapped by name.

    Declarations, definitions and their order are preserved; function and
    global operands are rebound to the copy's own objects, so the result is
    self-contained and behaviorally identical to the original under the
    merge pipeline.  The parity tests run the cold reference pipeline over a
    copy so the live module survives for the next delta.
    """
    from ..transforms.clone import clone_function  # deferred: transforms import ir

    copied = Module(module.name)
    for function in module.functions:
        if function.is_declaration():
            copied.declare_function(function.name, function.function_type)
        else:
            clone, _ = clone_function(function)
            copied.add_function(clone)
    remap_references(copied)
    return copied


def remap_references(module: Module) -> None:
    """Rebind every function/global operand in ``module`` by name.

    Operands referring to objects outside ``module`` (originals a clone kept
    pointing at, members of a previous module version) are replaced with
    ``module``'s own function of that name — declared on the fly if absent —
    or with a module-owned :class:`GlobalVariable` copy.  Canonical text
    refers to globals and callees purely by name, so remapping never changes
    any function's content digest.
    """
    globals_by_name: Dict[str, GlobalVariable] = {
        variable.name: variable for variable in module.globals}
    for function in module.functions:
        for block in function.blocks:
            for inst in block.instructions:
                for index, operand in enumerate(inst.operands):
                    if isinstance(operand, Function):
                        target = module.get_function(operand.name)
                        if target is None:
                            target = module.declare_function(
                                operand.name, operand.function_type)
                        if target is not operand:
                            inst.set_operand(index, target)
                    elif isinstance(operand, GlobalVariable):
                        target = globals_by_name.get(operand.name)
                        if target is None:
                            target = GlobalVariable(
                                operand.value_type, operand.name,
                                operand.initializer, operand.is_constant)
                            module.add_global(target)
                            globals_by_name[operand.name] = target
                        if target is not operand:
                            inst.set_operand(index, target)
