"""The attempt cache: memoized merge outcomes keyed by content digests.

Bit-identity with a cold run is guaranteed by *replaying* the ranking loop —
the loop's control flow is cheap — while memoizing its two expensive pure
steps: per-pair alignment + profitability evaluation, and per-commit merged
codegen.  Both are deterministic functions of the input functions' content,
so an outcome recorded under the ordered key ``(first.content_digest(),
second.content_digest())`` is valid forever — content changed ⇒ different
digest ⇒ the old entry is simply never looked up again, the same
no-invalidation contract as :mod:`repro.persist`.

An :class:`AttemptOutcome` stores exactly what a replayed
:class:`~repro.merge.pass_manager.MergeRecord` needs (decision integers,
matched instructions, DP cells, wall-clock attributions) plus — once some
run committed the pair — the merged function's *named* text and parameter
map, so later runs *splice* the merged body back in by parsing instead of
re-running codegen.  The text is the named rendering, not the canonical
one: local value names never change a digest, but SalSSA's phi coalescing
tie-breaks on them, so a spliced function that later participates in
further merging must carry the exact names a cold run would have produced.  Uncommitted outcomes carry no body; if a later delta
changes the ranking so a previously losing pair wins, the pass re-merges it
deterministically and promotes the entry.

``index_artifacts`` is a side cache for functions *created* during a run
(committed merged functions re-entering the candidate index): their
fingerprints / MinHash signatures / probe gaps keyed by content digest, so
replaying a delta does not recompute index artifacts for hundreds of
unchanged merged functions.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..analysis.fingerprint import Fingerprint
from ..ir.printer import print_function

#: Ordered (query digest, candidate digest) — merge(A, B) != merge(B, A).
PairKey = Tuple[str, str]


def pair_named_key(first, second) -> str:
    """Digest of the two inputs' *named* renderings.

    Content digests are canonical (name-independent), so two functions can
    share a :data:`PairKey` while carrying different local value names — and
    names steer SalSSA's phi coalescing, so their merged *bodies* differ.
    The named key guards the splice path: recorded text is only parsed back
    in when the replayed inputs are name-identical to the recorded ones;
    otherwise the pass re-merges deterministically.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(print_function(first).encode("utf-8"))
    digest.update(b"\x00")
    digest.update(print_function(second).encode("utf-8"))
    return digest.hexdigest()


@dataclass
class AttemptOutcome:
    """Everything one attempted merge decided, minus the IR."""

    #: The merger raised ``MergeError`` (counted as an attempt, no record).
    failed: bool = False
    # MergeDecision fields (reconstructed by the pass on replay):
    profitable: bool = False
    original_size: int = 0
    merged_size: int = 0
    overhead: int = 0
    # MergeRecord fields:
    matched_instructions: int = 0
    alignment_dp_cells: int = 0
    alignment_seconds: float = 0.0
    codegen_seconds: float = 0.0
    #: Named text of the merged body — present once the pair was committed
    #: by some run; parsed back in (spliced) on replayed commits.
    merged_text: Optional[str] = None
    #: Content digest of the committed merged function (used by ``compact``
    #: to chase liveness through merge chains).
    merged_digest: Optional[str] = None
    #: :func:`pair_named_key` of the inputs the text was recorded from.
    named_key: Optional[str] = None
    #: per input function (0/1): original argument index -> merged index.
    param_map: Optional[Dict[int, Dict[int, int]]] = None

    def payload(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "failed": self.failed,
            "profitable": self.profitable,
            "original_size": self.original_size,
            "merged_size": self.merged_size,
            "overhead": self.overhead,
            "matched_instructions": self.matched_instructions,
            "alignment_dp_cells": self.alignment_dp_cells,
            "alignment_seconds": self.alignment_seconds,
            "codegen_seconds": self.codegen_seconds,
        }
        if self.merged_text is not None:
            data["merged_text"] = self.merged_text
            data["named_key"] = self.named_key
            data["merged_digest"] = self.merged_digest
            data["param_map"] = {
                str(which): {str(original): merged
                             for original, merged in mapping.items()}
                for which, mapping in (self.param_map or {}).items()}
        return data

    @classmethod
    def from_payload(cls, data: Dict[str, Any]) -> "AttemptOutcome":
        param_map = None
        if data.get("param_map") is not None:
            param_map = {
                int(which): {int(original): int(merged)
                             for original, merged in mapping.items()}
                for which, mapping in data["param_map"].items()}
        return cls(
            failed=bool(data.get("failed", False)),
            profitable=bool(data.get("profitable", False)),
            original_size=int(data.get("original_size", 0)),
            merged_size=int(data.get("merged_size", 0)),
            overhead=int(data.get("overhead", 0)),
            matched_instructions=int(data.get("matched_instructions", 0)),
            alignment_dp_cells=int(data.get("alignment_dp_cells", 0)),
            alignment_seconds=float(data.get("alignment_seconds", 0.0)),
            codegen_seconds=float(data.get("codegen_seconds", 0.0)),
            merged_text=data.get("merged_text"),
            named_key=data.get("named_key"),
            merged_digest=data.get("merged_digest"),
            param_map=param_map,
        )


class AttemptCache:
    """Memoized attempt outcomes plus per-run reuse counters.

    The merge pass drives it duck-typed (``lookup`` / ``record`` /
    ``record_failure`` / ``note_commit`` and the ``merges_*`` counters), so
    :mod:`repro.merge` needs no import of this package.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        self.entries: Dict[PairKey, AttemptOutcome] = {}
        #: content digest -> index artifacts (fingerprint / signature /
        #: probe_gaps) of functions created mid-run (committed merges).
        self.index_artifacts: Dict[str, Dict[str, object]] = {}
        #: LRU cap on memoized pair outcomes (None = unbounded, the batch
        #: default).  A long-lived service session sees an unbounded delta
        #: stream — without a bound every pair ever considered stays
        #: resident forever.  Eviction is purely a work-saver lost: an
        #: evicted pair is simply re-scored on its next appearance.
        self.max_entries = max_entries
        #: Entries dropped over this cache's lifetime (LRU + ``compact``),
        #: surfaced as ``repro_incremental_cache_evicted_total``.
        self.evicted = 0
        self.begin_run()

    # ------------------------------------------------------------- lifecycle
    def begin_run(self) -> None:
        """Zero the per-run counters (call before every replayed run)."""
        self.run_hits = 0
        self.run_misses = 0
        self.merges_spliced = 0
        self.merges_recomputed = 0

    # ------------------------------------------------------------ bounding
    def _note_use(self, key: PairKey) -> None:
        # Python dicts iterate in insertion order; re-inserting on every use
        # keeps the front of ``entries`` the least-recently-used key.
        entry = self.entries.pop(key)
        self.entries[key] = entry

    def _enforce_cap(self) -> None:
        if self.max_entries is None:
            return
        while len(self.entries) > max(1, self.max_entries):
            self.entries.pop(next(iter(self.entries)))
            self.evicted += 1

    def compact(self, live_digests) -> int:
        """Drop every entry keyed off content no longer live; return count.

        ``live_digests`` seeds the set of content digests a future replay
        can look up directly (a session's current pristine functions — see
        :meth:`~repro.incremental.state.PipelineState.live_digests`).
        Liveness is then chased through merge chains: a committed entry
        whose endpoints are both live makes its ``merged_digest`` live too,
        since the replayed merged function re-enters the ranking loop.
        Everything unreachable belongs to content no delta stream can
        reference again, so dropping it cannot cost a single re-score.
        """
        live = set(live_digests)
        changed = True
        while changed:
            changed = False
            for (first, second), entry in self.entries.items():
                if (entry.merged_digest is not None
                        and entry.merged_digest not in live
                        and first in live and second in live):
                    live.add(entry.merged_digest)
                    changed = True
        dead_pairs = [key for key in self.entries
                      if key[0] not in live or key[1] not in live]
        for key in dead_pairs:
            del self.entries[key]
        dead_artifacts = [digest for digest in self.index_artifacts
                          if digest not in live]
        for digest in dead_artifacts:
            del self.index_artifacts[digest]
        self.evicted += len(dead_pairs) + len(dead_artifacts)
        return len(dead_pairs) + len(dead_artifacts)

    # ------------------------------------------------------------ pass hooks
    def lookup(self, key: PairKey) -> Optional[AttemptOutcome]:
        entry = self.entries.get(key)
        if entry is not None:
            self.run_hits += 1
            if self.max_entries is not None:
                self._note_use(key)
        return entry

    def record(self, key: PairKey, decision, stats) -> AttemptOutcome:
        """Memoize a freshly evaluated attempt (its decision and stats)."""
        self.run_misses += 1
        entry = AttemptOutcome(
            failed=False,
            profitable=decision.profitable,
            original_size=decision.original_size,
            merged_size=decision.merged_size,
            overhead=decision.overhead,
            matched_instructions=stats.matched_instructions,
            alignment_dp_cells=stats.alignment_dp_cells,
            alignment_seconds=stats.alignment_seconds,
            codegen_seconds=stats.codegen_seconds,
        )
        self.entries[key] = entry
        self._enforce_cap()
        return entry

    def record_failure(self, key: PairKey) -> AttemptOutcome:
        """Memoize a ``MergeError`` outcome (replays as a skipped attempt)."""
        self.run_misses += 1
        entry = AttemptOutcome(failed=True)
        self.entries[key] = entry
        self._enforce_cap()
        return entry

    def note_commit(self, merged) -> None:
        """Capture the committed merged body for future splicing.

        Must be called *before* the originals are thunked — the pair key is
        their pre-commit content digests (memoized, so this is cheap).
        """
        key = (merged.first.content_digest(), merged.second.content_digest())
        entry = self.entries.get(key)
        if entry is None or entry.merged_text is not None:
            return
        entry.merged_text = print_function(merged.function)
        entry.named_key = pair_named_key(merged.first, merged.second)
        entry.param_map = merged.param_map
        entry.merged_digest = merged.function.content_digest()

    #: Exposed on the cache so the merge pass stays duck-typed (no import
    #: of this package from :mod:`repro.merge`).
    pair_named_key = staticmethod(pair_named_key)

    def splice_valid(self, entry: AttemptOutcome, first, second) -> bool:
        """Whether ``entry``'s recorded text may be spliced for this pair.

        False when the replayed inputs' *named* renderings differ from the
        recorded ones — possible when canonically identical functions with
        different value names share a pair key — in which case the caller
        re-merges deterministically instead.
        """
        return (entry.merged_text is not None
                and entry.named_key == pair_named_key(first, second))

    # ---------------------------------------------------------- index hooks
    def prime_index_artifacts(self, index, function) -> None:
        """Inject cached artifacts for ``function`` before ``index.update``."""
        cached = self.index_artifacts.get(function.content_digest())
        if cached is not None:
            index.precomputed[function] = dict(cached)

    def capture_index_artifacts(self, index, function) -> None:
        """Export ``function``'s artifacts after ``index.update`` indexed it."""
        if function in index.fingerprints:
            self.index_artifacts[function.content_digest()] = \
                dict(index.export_artifacts(function))

    # --------------------------------------------------------- serialization
    def attempts_payload(self) -> List[List[Any]]:
        return [[first, second, entry.payload()]
                for (first, second), entry in self.entries.items()]

    def artifacts_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {}
        for digest, artifacts in self.index_artifacts.items():
            fingerprint = artifacts.get("fingerprint")
            if fingerprint is None:
                continue
            record: Dict[str, Any] = {
                "fingerprint": [list(fingerprint.counts), fingerprint.size]}
            if artifacts.get("signature") is not None:
                record["signature"] = list(artifacts["signature"])
            if artifacts.get("probe_gaps") is not None:
                record["probe_gaps"] = list(artifacts["probe_gaps"])
            payload[digest] = record
        return payload

    def load_payloads(self, attempts: List[List[Any]],
                      artifacts: Dict[str, Any]) -> None:
        for first, second, data in attempts:
            self.entries[(str(first), str(second))] = \
                AttemptOutcome.from_payload(data)
        for digest, record in artifacts.items():
            counts, size = record["fingerprint"]
            restored: Dict[str, object] = {
                "fingerprint": Fingerprint(tuple(int(c) for c in counts),
                                           int(size))}
            if record.get("signature") is not None:
                restored["signature"] = tuple(
                    int(v) for v in record["signature"])
            if record.get("probe_gaps") is not None:
                restored["probe_gaps"] = tuple(
                    int(v) for v in record["probe_gaps"])
            self.index_artifacts[str(digest)] = restored
