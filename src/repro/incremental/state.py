"""Pipeline state carried across deltas, and its persistent snapshot.

A :class:`PipelineState` owns everything one module's merge pipeline can
reuse between runs:

* **pristine functions** — normalized (mem2reg + simplify) private clones of
  every live function, keyed by name.  Normalization is a pure per-function
  map, so normalizing each function once when it arrives is bit-identical to
  the cold pipeline's whole-module ``baseline_compile`` pass.
* a **candidate index** over the pristine functions, maintained with
  ``CandidateIndex.add/update/remove`` for delta members only; its exported
  artifacts (fingerprints, MinHash signatures, probe gaps) warm-start each
  run's index so index construction is O(population) cheap dictionary work,
  never O(population) hashing.
* the **attempt cache** (:class:`~repro.incremental.cache.AttemptCache`) —
  the memoized pair scores and merged bodies that make replaying a run
  near-O(|delta|).
* the previous run's :class:`~repro.merge.pass_manager.MergeReport` and
  analysis manager, plus the clone clusters derived from the report.

``save_state`` / ``load_state`` snapshot the whole thing into a
:class:`~repro.persist.ArtifactStore` keyed by benchmark + configuration, so
a restarted process warm-starts straight into incremental mode (see
``docs/incremental.md`` for the snapshot format).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from ..ir.function import Function
from ..ir.module import Module
from ..ir.parser import parse_named_function
from ..ir.printer import print_function
from ..persist.store import ArtifactStore
from ..search import SearchStrategy, make_index, resolve_strategy
from ..transforms.clone import clone_function
from ..transforms.mem2reg import promote_allocas
from ..transforms.simplify import simplify_function
from .cache import AttemptCache
from .delta import ModuleDelta, detect_delta, remap_references, \
    replace_function_body

#: Artifact-store kind of pipeline-state snapshots.
STATE_KIND = "incremental.state"

#: Version tag of the snapshot payload; bump on incompatible change (old
#: snapshots then read as absent — a cold bootstrap, never wrong data).
STATE_SCHEMA = 1


@dataclass(frozen=True)
class IncrementalConfig:
    """The semantic configuration one pipeline state is valid for.

    Everything that changes the merge *outcome* is part of the key; runtime
    toggles that are proven bit-identical (worker count, backend, caching,
    telemetry) deliberately are not — one state serves them all.
    """

    benchmark: str = "incremental"
    technique: str = "salssa"
    threshold: int = 1
    target: str = "x86_64"
    phi_coalescing: bool = True
    search_strategy: Union[str, SearchStrategy] = "exhaustive"
    min_function_size: int = 3

    def resolved_strategy(self) -> SearchStrategy:
        return resolve_strategy(self.search_strategy)

    def key(self) -> str:
        """A stable digest of the outcome-relevant configuration."""
        strategy = self.resolved_strategy()
        text = repr((self.technique, self.threshold, self.target,
                     self.phi_coalescing, self.min_function_size, strategy))
        return hashlib.blake2b(text.encode("utf-8"),
                               digest_size=12).hexdigest()

    def payload(self) -> Dict[str, Any]:
        return {"benchmark": self.benchmark, "key": self.key()}


class PipelineState:
    """Everything :func:`repro.harness.run_pipeline_incremental` reuses."""

    def __init__(self, config: IncrementalConfig,
                 artifact_store: Optional[ArtifactStore] = None) -> None:
        self.config = config
        self.artifact_store = artifact_store
        #: name -> normalized pristine clone (the replayed merge input).
        self.functions: Dict[str, Function] = {}
        #: name -> content digest of the *source* (un-normalized) function
        #: as last ingested; the basis of delta detection.
        self.source_digests: Dict[str, str] = {}
        self.cache = AttemptCache()
        self.deltas_applied = 0
        #: The previous run's report / manager (telemetry + cluster queries).
        self.report = None
        self.analysis_manager = None
        self.index = make_index(_EmptyPopulation(),
                                config.resolved_strategy(),
                                min_size=config.min_function_size,
                                artifact_store=artifact_store)
        self._engine = None
        self._engine_setup: Tuple[Any, Any] = (None, None)

    # -------------------------------------------------------------- deltas
    def detect_delta(self, module: Module) -> ModuleDelta:
        """Diff ``module`` against the last ingested source digests."""
        return detect_delta(module, self.source_digests)

    def apply_delta(self, module: Module, delta: ModuleDelta) -> None:
        """Ingest delta members only: O(|delta|) cloning, normalization and
        ``CandidateIndex.remove/update/add`` maintenance."""
        for name in delta.removed:
            function = self.functions.pop(name)
            self.source_digests.pop(name, None)
            self.index.remove(function)
        for name in delta.changed:
            incoming = module.get_function(name)
            if incoming is None or incoming.is_declaration():
                raise ValueError(f"changed function @{name} is not defined "
                                 f"in the incoming module")
            pristine = self.functions[name]
            if pristine.function_type == incoming.function_type:
                # Same signature: splice the new body into the existing
                # object so the index sees a true in-place *update*.
                replace_function_body(pristine, incoming)
                self._normalize(pristine)
                self.index.update(pristine)
            else:
                self.index.remove(pristine)
                self.index.add(self._ingest(name, incoming))
            self.source_digests[name] = incoming.content_digest()
        for name in delta.added:
            incoming = module.get_function(name)
            if incoming is None or incoming.is_declaration():
                raise ValueError(f"added function @{name} is not defined "
                                 f"in the incoming module")
            self.index.add(self._ingest(name, incoming))
            self.source_digests[name] = incoming.content_digest()
        self.deltas_applied += 1

    def _ingest(self, name: str, incoming: Function) -> Function:
        clone, _ = clone_function(incoming)
        self._normalize(clone)
        self.functions[name] = clone
        return clone

    @staticmethod
    def _normalize(function: Function) -> None:
        # The per-function image of the cold pipeline's baseline_compile
        # stage (promote_module + simplify_module are per-function maps;
        # the emit stage assigns names to unnamed values, which matters
        # because SalSSA phi coalescing tie-breaks on value names).
        promote_allocas(function)
        simplify_function(function)
        function.assign_names()

    # ------------------------------------------------------------- assembly
    def assemble(self, module: Module
                 ) -> Tuple[Module, Dict[Function, Dict[str, object]]]:
        """Build this run's working module plus its precomputed artifacts.

        The working module clones every pristine function **in the incoming
        module's order** — worklist tie-breaks follow index insertion order,
        so ordering by the live module keeps replay bit-identical to a cold
        run over it.  All cross-references are remapped by name onto working
        objects (operand *identity* patterns must match a cold module's),
        clone digests are seeded from their pristine originals, and every
        indexed function ships its state-index artifacts so the run index
        never recomputes a fingerprint or signature for clean content.
        """
        working = Module(module.name)
        clones: List[Tuple[Function, Function]] = []
        for function in module.functions:
            if function.is_declaration():
                working.declare_function(function.name, function.function_type)
                continue
            pristine = self.functions[function.name]
            clone, _ = clone_function(pristine)
            working.add_function(clone)
            clones.append((pristine, clone))
        remap_references(working)
        precomputed: Dict[Function, Dict[str, object]] = {}
        for pristine, clone in clones:
            clone.prime_content_digest(pristine.content_digest())
            if pristine in self.index.fingerprints:
                precomputed[clone] = dict(self.index.export_artifacts(pristine))
        return working, precomputed

    # ------------------------------------------------------------- parallel
    def engine_for(self, parallel_config, registry=None):
        """The state-owned worker-pool engine (created once, reused across
        deltas so dirty pairs fan out to an *existing* pool), or None."""
        if parallel_config is None:
            return None
        setup = (parallel_config, registry)
        if self._engine is None or self._engine_setup != setup:
            self.close()
            from ..parallel.engine import ParallelEngine  # deferred: heavy
            self._engine = ParallelEngine(parallel_config, metrics=registry)
            self._engine_setup = setup
        return self._engine

    def close(self) -> None:
        """Release the worker pool (the state itself stays usable)."""
        if self._engine is not None:
            self._engine.close()
            self._engine = None
            self._engine_setup = (None, None)

    # -------------------------------------------------------------- queries
    def live_digests(self) -> Set[str]:
        """Content digests a future replay can still look up directly.

        The pristine functions' digests.  Feed this to
        :meth:`AttemptCache.compact`, which itself expands the set through
        committed merged functions (their digests are recorded on the cache
        entries), then drops everything unreachable.
        """
        return {function.content_digest()
                for function in self.functions.values()}

    def compact_cache(self) -> int:
        """Drop attempt-cache entries no future delta stream can reference."""
        return self.cache.compact(self.live_digests())

    def clone_clusters(self) -> List[Set[str]]:
        """Connected components of the last report's committed merges."""
        if self.report is None:
            return []
        parent: Dict[str, str] = {}

        def find(name: str) -> str:
            parent.setdefault(name, name)
            while parent[name] != name:
                parent[name] = parent[parent[name]]
                name = parent[name]
            return name

        def union(a: str, b: str) -> None:
            parent[find(a)] = find(b)

        for record in self.report.records:
            if record.committed:
                union(record.first, record.merged)
                union(record.second, record.merged)
        clusters: Dict[str, Set[str]] = {}
        for name in parent:
            clusters.setdefault(find(name), set()).add(name)
        return sorted(clusters.values(), key=lambda c: sorted(c)[0])

    # ------------------------------------------------------------- snapshot
    def snapshot_digest(self) -> str:
        """The store digest this state's snapshot lives under (per benchmark
        and configuration, so a restarted process finds the latest state)."""
        return f"{self.config.benchmark}.{self.config.key()}"

    def snapshot_payload(self) -> Dict[str, Any]:
        return {
            "schema": STATE_SCHEMA,
            "config": self.config.payload(),
            "deltas_applied": self.deltas_applied,
            "functions": [
                [name, self.source_digests.get(name, ""),
                 print_function(function)]
                for name, function in self.functions.items()],
            "attempts": self.cache.attempts_payload(),
            "artifacts": self.cache.artifacts_payload(),
        }


def save_state(store: ArtifactStore, state: PipelineState) -> bool:
    """Publish ``state``'s snapshot (atomic last-wins replace)."""
    return store.store(STATE_KIND, state.snapshot_digest(),
                       state.snapshot_payload())


def load_state(store: ArtifactStore, config: IncrementalConfig
               ) -> Optional[PipelineState]:
    """Rebuild a :class:`PipelineState` from its snapshot, or None (a miss).

    Any defect — absent record, schema drift, configuration mismatch,
    unparseable function text — is a miss: the caller bootstraps cold,
    which is always correct, just slower.
    """
    digest = f"{config.benchmark}.{config.key()}"
    payload = store.load(STATE_KIND, digest)
    if not isinstance(payload, dict):
        return None
    if payload.get("schema") != STATE_SCHEMA:
        store.note_invalid_payload()
        return None
    stored_config = payload.get("config", {})
    if stored_config.get("key") != config.key():
        store.note_invalid_payload()
        return None
    state = PipelineState(config, artifact_store=store)
    try:
        for name, source_digest, text in payload["functions"]:
            function = parse_named_function(str(text))
            if function.name != str(name):
                raise ValueError(f"snapshot text names @{function.name}, "
                                 f"recorded as @{name}")
            state.functions[str(name)] = function
            state.source_digests[str(name)] = str(source_digest)
            state.index.add(function)
        state.cache.load_payloads(payload.get("attempts", []),
                                  payload.get("artifacts", {}))
        state.deltas_applied = int(payload.get("deltas_applied", 0))
    except (KeyError, TypeError, ValueError):
        store.note_invalid_payload()
        return None
    return state


class _EmptyPopulation:
    """The zero-function module stand-in the state index starts from.

    Members arrive exclusively through ``CandidateIndex.add`` as deltas are
    ingested; an ``adaptive`` index starts on its small-population choice
    and re-evaluates itself as the population grows (see
    :mod:`repro.search.adaptive`).
    """

    def defined_functions(self) -> List[Function]:
        return []
