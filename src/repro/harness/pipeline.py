"""The compilation pipeline used by every experiment.

It mirrors the paper's Figure 16: the per-benchmark module (our stand-in for
the LTO-linked IR of the program) goes through a clean-up pass (the ``opt``
stage), then optionally through function merging (FMSA or SalSSA), and the
final "object size" is computed with a target size model.  Baseline = the same
pipeline without function merging.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from ..analysis.manager import AnalysisStats, ModuleAnalysisManager
from ..analysis.size_model import SizeModel, X86_64, get_target
from ..incremental import IncrementalConfig, IncrementalStats, ModuleDelta, \
    PipelineState, load_state, save_state
from ..obs import EventLog, MetricsRegistry, as_registry, attach_events, \
    attach_run_ledger, cached_bucket_overrides, maybe_span, \
    observe_incremental_stats, observe_pipeline_result, record_pipeline_run
from ..parallel.stats import ParallelStats
from ..persist import ArtifactStore, PersistentAnalysisCache, StoreStats
from ..search import SearchStrategy
from ..ir.module import Module
from ..ir.printer import print_module
from ..ir.verifier import verify_module
from ..merge.pass_manager import FunctionMergingPass, MergePassOptions, MergeReport
from ..merge.salssa import SalSSAOptions
from ..transforms.mem2reg import promote_module
from ..transforms.simplify import simplify_module
from .metrics import measure_peak_memory


@dataclass
class PipelineResult:
    """Everything measured for one (benchmark, technique, threshold) run."""

    benchmark: str
    technique: str
    threshold: int
    baseline_size: int
    final_size: int
    baseline_instructions: int
    final_instructions: int
    baseline_compile_seconds: float
    merge_seconds: float
    report: Optional[MergeReport] = None
    peak_merge_bytes: int = 0
    #: Cache hit/miss/invalidation counters of the module-level analysis
    #: manager (None when the run was executed without analysis caching).
    analysis_stats: Optional[AnalysisStats] = None
    #: Hit/miss/load/store counters of the content-addressed artifact store
    #: (None when the run had no ``cache_dir`` — the always-cold default).
    persist_stats: Optional[StoreStats] = None
    #: Worker-pool counters of the merge pass (None when the run had no
    #: engine — ``parallel_workers=0``, the serial default).
    parallel_stats: Optional[ParallelStats] = None
    #: The run's unified telemetry (see :mod:`repro.obs`): every stats view
    #: above folded into one registry, plus phase spans and timers.  None
    #: unless ``run_pipeline`` was called with ``metrics=``; export with
    #: ``result.metrics.to_prometheus()`` or ``result.metrics.snapshot()``.
    metrics: Optional[MetricsRegistry] = None

    @property
    def reduction_percent(self) -> float:
        if self.baseline_size == 0:
            return 0.0
        return 100.0 * (self.baseline_size - self.final_size) / self.baseline_size

    @property
    def normalized_compile_time(self) -> float:
        """End-to-end compile time normalised to the no-merging baseline."""
        if self.baseline_compile_seconds <= 0:
            return 1.0
        return (self.baseline_compile_seconds + self.merge_seconds) / \
            self.baseline_compile_seconds


def baseline_compile(module: Module,
                     analysis_manager: Optional[ModuleAnalysisManager] = None,
                     metrics: Optional[MetricsRegistry] = None) -> float:
    """The "rest of the compiler" proxy: clean-up, verification and emission.

    Returns the time spent, which the compile-time experiment (Figure 24) uses
    as the denominator when normalising the merging overhead.  With a
    ``metrics`` registry attached, the stage also records a
    ``baseline_compile`` span with one sub-span per sub-stage.
    """
    started = time.perf_counter()
    with maybe_span(metrics, "baseline_compile"):
        with maybe_span(metrics, "baseline_compile.mem2reg"):
            promote_module(module, analysis_manager)  # runs early in any -O pipeline
        with maybe_span(metrics, "baseline_compile.simplify"):
            simplify_module(module, analysis_manager)
        with maybe_span(metrics, "baseline_compile.verify"):
            verify_module(module, raise_on_error=False, manager=analysis_manager)
        with maybe_span(metrics, "baseline_compile.emit"):
            print_module(module)  # stands in for instruction selection / emission
    return time.perf_counter() - started


def make_pass_options(technique: str, threshold: int, size_model: SizeModel,
                      phi_coalescing: bool = True,
                      search_strategy: Union[str, SearchStrategy] = "exhaustive",
                      cache_dir: Optional[str] = None,
                      parallel_workers: int = 0,
                      parallel_backend: str = "process",
                      parallel_persistent: bool = False
                      ) -> MergePassOptions:
    """Build pass options for one experimental configuration."""
    return MergePassOptions(
        technique=technique,
        exploration_threshold=threshold,
        search_strategy=search_strategy,
        size_model=size_model,
        salssa=SalSSAOptions(phi_coalescing=phi_coalescing),
        cache_dir=cache_dir,
        parallel_workers=parallel_workers,
        parallel_backend=parallel_backend,
        parallel_persistent=parallel_persistent,
    )


def _pipeline_registry(metrics, tuned_buckets: bool
                       ) -> Optional[MetricsRegistry]:
    """Coerce a ``metrics=`` argument, applying trend-tuned histogram
    ladders to registries the *pipeline* creates (``True``/``"deep"``).

    An explicitly passed registry is used as-is — its owner already chose
    its ladders.  ``tuned_buckets=False`` is the opt-out; with no usable
    quantile history in ``benchmarks/trend.jsonl``,
    :func:`~repro.obs.cached_bucket_overrides` returns ``{}`` and behaviour
    is byte-for-byte the untuned default.
    """
    if metrics is None or isinstance(metrics, MetricsRegistry):
        return as_registry(metrics)
    if metrics is not True and metrics != "deep":
        return as_registry(metrics)  # reuse its TypeError message
    overrides = cached_bucket_overrides() if tuned_buckets else {}
    deep = metrics == "deep"
    return MetricsRegistry(trace_memory=deep, deep=deep,
                           bucket_overrides=overrides or None)


def run_pipeline(module: Module, benchmark: str, technique: str = "salssa",
                 threshold: int = 1, target: str = "x86_64",
                 phi_coalescing: bool = True,
                 measure_memory: bool = False,
                 search_strategy: Union[str, SearchStrategy] = "exhaustive",
                 analysis_manager: Optional[ModuleAnalysisManager] = None,
                 analysis_caching: bool = True,
                 cache_dir: Optional[str] = None,
                 artifact_store: Optional[ArtifactStore] = None,
                 parallel_workers: int = 0,
                 parallel_backend: str = "process",
                 parallel_persistent: bool = False,
                 metrics: Union[None, bool, str, MetricsRegistry] = None,
                 events: Union[None, bool, EventLog] = None,
                 run_ledger=None,
                 tuned_buckets: bool = True
                 ) -> PipelineResult:
    """Run the full pipeline on ``module`` (which is consumed/mutated).

    ``technique`` may be ``"salssa"``, ``"fmsa"`` or ``"none"`` (baseline only).
    ``search_strategy`` selects the candidate index the merge pass queries;
    the default keeps the seed's exhaustive ranking.

    ``parallel_workers`` (see :mod:`repro.parallel`) fans the merge pass's
    read-only phases — index-artifact construction and candidate prefetch —
    out over a worker pool (``parallel_backend``: ``"process"`` or the
    in-process ``"serial"`` reference).  Codegen stays serial; results are
    bit-identical at any worker count, only the wall-clock differs.  Worker
    counters land on :attr:`PipelineResult.parallel_stats`.

    The pipeline owns a module-level :class:`ModuleAnalysisManager` shared by
    the clean-up transforms, the verifier, the merge pass, its cost model and
    the candidate index; its counters are surfaced on
    :attr:`PipelineResult.analysis_stats`.  Pass ``analysis_caching=False``
    (or an explicit ``analysis_manager``) to override — merge outcomes are
    bit-identical with and without the cache, only the work differs.

    ``cache_dir`` (or a live ``artifact_store``) turns on cross-run
    persistence (see :mod:`repro.persist`): the pipeline-owned manager then
    loads fingerprints and function sizes by content digest, the candidate
    index warm-starts its MinHash signatures, and the store's counters are
    surfaced on :attr:`PipelineResult.persist_stats`.  Reports are
    bit-identical with a cold, warm or absent store.  (An explicitly passed
    ``analysis_manager`` is used as-is — it keeps whatever persistent tier it
    was built with.)

    ``metrics`` turns on the unified telemetry spine (see :mod:`repro.obs`):
    ``True`` gives the run a fresh :class:`~repro.obs.MetricsRegistry`,
    ``"deep"`` one that additionally attributes net ``tracemalloc``
    allocation to every phase span, or pass a registry to accumulate several
    runs into one.  The registry is threaded through every layer — phase
    spans, store/search/analysis hooks, per-worker registries merged back
    deterministically — and surfaced on :attr:`PipelineResult.metrics` with
    all the stats views above folded in.  Telemetry is purely observational:
    reports and sizes are bit-identical with it on or off.

    ``events`` additionally turns on the flight recorder (see
    :mod:`repro.obs.events`): ``True`` attaches a fresh
    :class:`~repro.obs.EventLog` (creating a registry for it to ride on if
    ``metrics`` was off), or pass a log to keep recording across runs.  The
    merge pass then emits one decision-level event per pair considered,
    verdict, commit and rollback — inspect with ``python -m
    repro.obs.explain``.  Same contract as metrics: reports are
    bit-identical with the recorder on or off.

    ``run_ledger`` (a :class:`~repro.obs.RunLedger`, an
    :class:`~repro.persist.ArtifactStore` or a path to root one at) makes
    the run finish by writing a durable :class:`~repro.obs.RunRecord` into
    the ledger — query with ``repro-runs`` (see ``docs/runs.md``).  A
    registry that already carries a ledger (via
    :func:`~repro.obs.attach_run_ledger`) records without this argument.

    ``tuned_buckets`` (default on) gives registries the pipeline creates
    (``metrics=True``/``"deep"``) trend-tuned histogram ladders when
    ``benchmarks/trend.jsonl`` carries enough quantile history per family;
    pass ``False`` to keep the one-size default ladders.  Purely
    observational either way.
    """
    size_model = get_target(target)
    registry = _pipeline_registry(metrics, tuned_buckets)
    if events is not None and events is not False:
        if registry is None:
            registry = _pipeline_registry(True, tuned_buckets)
        attach_events(registry, events)
    if run_ledger is not None:
        if registry is None:
            registry = _pipeline_registry(True, tuned_buckets)
        attach_run_ledger(registry, run_ledger)
    store = artifact_store
    if store is None and cache_dir is not None:
        store = ArtifactStore(cache_dir)
    manager = analysis_manager
    if manager is None and analysis_caching:
        persistent = PersistentAnalysisCache(store) if store is not None else None
        manager = ModuleAnalysisManager(module, persistent=persistent)
    if registry is not None:
        if store is not None:
            store.attach_metrics(registry)
        if manager is not None:
            manager.attach_metrics(registry)
    baseline_seconds = baseline_compile(module, manager, registry)
    baseline_size = size_model.module_size(module)
    baseline_instructions = module.num_instructions()

    # A registry coerced here (metrics=True/"deep") has no outside owner to
    # stop the tracemalloc it may have started — close it before returning
    # (spans are complete by then; close never discards recorded data).
    owns_registry = registry is not None \
        and not isinstance(metrics, MetricsRegistry)

    run_config = {
        "target": target,
        "phi_coalescing": phi_coalescing,
        "search_strategy": search_strategy if isinstance(search_strategy, str)
        else type(search_strategy).__name__,
        "parallel_workers": parallel_workers,
        "parallel_backend": parallel_backend,
    }

    if technique == "none":
        result = PipelineResult(benchmark, technique, threshold, baseline_size,
                                baseline_size, baseline_instructions,
                                baseline_instructions, baseline_seconds, 0.0,
                                analysis_stats=manager.stats if manager else None,
                                persist_stats=store.stats if store else None,
                                metrics=registry)
        observe_pipeline_result(registry, result)
        record_pipeline_run(registry, result, mode="cold", config=run_config)
        if owns_registry:
            registry.close()
        return result

    options = make_pass_options(technique, threshold, size_model, phi_coalescing,
                                search_strategy=search_strategy,
                                parallel_workers=parallel_workers,
                                parallel_backend=parallel_backend,
                                parallel_persistent=parallel_persistent)
    merging_pass = FunctionMergingPass(options)

    peak_bytes = 0
    started = time.perf_counter()
    with maybe_span(registry, "merge"):
        if measure_memory:
            report, peak_bytes = measure_peak_memory(merging_pass.run, module,
                                                     manager, store,
                                                     metrics=registry)
        else:
            report = merging_pass.run(module, analysis_manager=manager,
                                      artifact_store=store, metrics=registry)
    merge_seconds = time.perf_counter() - started

    final_size = size_model.module_size(module)
    result = PipelineResult(
        benchmark=benchmark,
        technique=technique,
        threshold=threshold,
        baseline_size=baseline_size,
        final_size=final_size,
        baseline_instructions=baseline_instructions,
        final_instructions=module.num_instructions(),
        baseline_compile_seconds=baseline_seconds,
        merge_seconds=merge_seconds,
        report=report,
        peak_merge_bytes=peak_bytes,
        analysis_stats=manager.stats if manager else None,
        persist_stats=store.stats if store else None,
        parallel_stats=report.parallel_stats,
        metrics=registry,
    )
    observe_pipeline_result(registry, result)
    record_pipeline_run(registry, result, mode="cold", config=run_config)
    if owns_registry:
        registry.close()
    return result


@dataclass
class IncrementalRun:
    """One delta's worth of incremental pipeline output."""

    #: The same shape a cold ``run_pipeline`` returns (report, sizes,
    #: timings) — ``merge_report_digest(run.result.report)`` is the parity
    #: bar against the cold pipeline.  ``baseline_compile_seconds`` is 0:
    #: the incremental path never re-runs the baseline stage, its input is
    #: already normalized.
    result: PipelineResult
    #: The (mutated) state to thread into the next delta.
    state: PipelineState
    #: The delta this run applied (detected or caller-supplied).
    delta: ModuleDelta
    #: What the delta cost and what the previous state paid for.
    stats: IncrementalStats

    @property
    def report(self) -> Optional[MergeReport]:
        return self.result.report


def _parallel_stats_delta(before: Optional[ParallelStats],
                          after: Optional[ParallelStats]
                          ) -> Optional[ParallelStats]:
    """Per-run worker-pool counters of a state-owned (long-lived) engine."""
    if after is None:
        return None
    if before is None:
        return after
    delta = ParallelStats(backend=after.backend, workers=after.workers)
    for name, value in vars(after).items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            previous = getattr(before, name, 0)
            if isinstance(previous, (int, float)) \
                    and not isinstance(previous, bool):
                setattr(delta, name, type(value)(value - previous))
    delta.backend = after.backend
    delta.workers = after.workers
    return delta


def run_pipeline_incremental(module: Module,
                             state: Optional[PipelineState] = None,
                             delta: Optional[ModuleDelta] = None,
                             *,
                             benchmark: str = "incremental",
                             technique: str = "salssa",
                             threshold: int = 1,
                             target: str = "x86_64",
                             phi_coalescing: bool = True,
                             search_strategy: Union[str, SearchStrategy]
                             = "exhaustive",
                             cache_dir: Optional[str] = None,
                             artifact_store: Optional[ArtifactStore] = None,
                             parallel_workers: int = 0,
                             parallel_backend: str = "process",
                             parallel_persistent: bool = False,
                             metrics: Union[None, bool, str, MetricsRegistry]
                             = None,
                             events: Union[None, bool, EventLog]
                             = None,
                             run_ledger=None,
                             tuned_buckets: bool = True) -> IncrementalRun:
    """Re-run the merge pipeline for ``module``, reusing ``state``.

    The incremental counterpart of :func:`run_pipeline` (see
    :mod:`repro.incremental` and ``docs/incremental.md``): the final report
    is **bit-identical** to a cold ``run_pipeline`` over the same module,
    but only pairs with at least one *dirty* endpoint are re-scored, only
    merges the attempt cache cannot splice are re-generated, and index
    artifacts are reused for every clean function — near-O(|delta|) work
    per call for live modules.

    ``state`` is ``None`` on the first call: with a ``cache_dir`` (or
    ``artifact_store``) the pipeline then tries to *load* the previous
    process's state snapshot and warm-start straight into incremental mode;
    otherwise it bootstraps cold (every pair is a cache miss — the same
    work a cold run does, invested once).  ``delta`` is detected via
    ``content_digest`` diffs when not supplied.  The input module is never
    mutated — each run replays over a working copy assembled from the
    state's pristine functions, so the caller keeps editing the live module
    between deltas.

    ``parallel_workers`` hands each run a *state-owned* long-lived engine:
    dirty candidate queries fan out to the existing worker pool instead of
    respawning one per delta (call ``state.close()`` when done).

    ``metrics`` and ``events`` match :func:`run_pipeline`: the telemetry
    registry and the flight recorder, both purely observational.  Replay
    decisions (cache-hit verdicts, splice vs deterministic re-merge with the
    ``named_key`` guard, state-snapshot provenance) land in the event log
    with their reason codes.

    ``run_ledger`` and ``tuned_buckets`` match :func:`run_pipeline`: the
    durable run ledger (records land with ``mode="incremental"`` plus the
    delta's :class:`~repro.incremental.IncrementalStats`) and the default-on
    trend-tuned histogram ladders.
    """
    size_model = get_target(target)
    registry = _pipeline_registry(metrics, tuned_buckets)
    if events is not None and events is not False:
        if registry is None:
            registry = _pipeline_registry(True, tuned_buckets)
        attach_events(registry, events)
    if run_ledger is not None:
        if registry is None:
            registry = _pipeline_registry(True, tuned_buckets)
        attach_run_ledger(registry, run_ledger)
    events_log = registry.events if registry is not None else None
    store = artifact_store
    if store is None and cache_dir is not None:
        store = ArtifactStore(cache_dir)
    config = IncrementalConfig(
        benchmark=benchmark, technique=technique, threshold=threshold,
        target=target, phi_coalescing=phi_coalescing,
        search_strategy=search_strategy)
    with maybe_span(registry, "incremental.delta"):
        loaded_from_store = False
        if state is None and store is not None:
            state = load_state(store, config)
            loaded_from_store = state is not None
        if events_log is not None:
            events_log.emit(
                "state_load", benchmark=benchmark,
                provenance="artifact_store" if loaded_from_store
                else ("live_state" if state is not None else "cold_bootstrap"))
        if state is None:
            state = PipelineState(config, artifact_store=store)
        elif state.config.key() != config.key():
            raise ValueError(
                "run_pipeline_incremental called with a state built for a "
                "different configuration; start a new state (or pass "
                "matching technique/threshold/target/strategy arguments)")
        if registry is not None and store is not None:
            store.attach_metrics(registry)
        with maybe_span(registry, "incremental.apply_delta"):
            if delta is None:
                delta = state.detect_delta(module)
            state.apply_delta(module, delta)
        with maybe_span(registry, "incremental.assemble"):
            working, precomputed = state.assemble(module)
        persistent = PersistentAnalysisCache(store) if store is not None \
            else None
        manager = ModuleAnalysisManager(working, persistent=persistent)
        if registry is not None:
            manager.attach_metrics(registry)
        baseline_size = size_model.module_size(working)
        baseline_instructions = working.num_instructions()
        options = make_pass_options(
            technique, threshold, size_model, phi_coalescing,
            search_strategy=search_strategy,
            parallel_workers=parallel_workers,
            parallel_backend=parallel_backend,
            parallel_persistent=parallel_persistent)
        merging_pass = FunctionMergingPass(options)
        engine = state.engine_for(merging_pass.parallel_config, registry)
        engine_before = None
        if engine is not None:
            import copy as _copy
            engine_before = _copy.copy(engine.stats)
        state.cache.begin_run()
        evicted_before = state.cache.evicted
        started = time.perf_counter()
        with maybe_span(registry, "incremental.merge"):
            report = merging_pass.run(
                working, analysis_manager=manager, artifact_store=store,
                metrics=registry, precomputed=precomputed,
                attempt_cache=state.cache, engine=engine)
        merge_seconds = time.perf_counter() - started
        if engine is not None:
            report.parallel_stats = _parallel_stats_delta(
                engine_before, engine.stats)
        result = PipelineResult(
            benchmark=benchmark,
            technique=technique,
            threshold=threshold,
            baseline_size=baseline_size,
            final_size=size_model.module_size(working),
            baseline_instructions=baseline_instructions,
            final_instructions=working.num_instructions(),
            baseline_compile_seconds=0.0,
            merge_seconds=merge_seconds,
            report=report,
            analysis_stats=manager.stats,
            persist_stats=store.stats if store is not None else None,
            parallel_stats=report.parallel_stats,
            metrics=registry,
        )
        stats = IncrementalStats(
            delta_index=state.deltas_applied - 1,
            functions_added=len(delta.added),
            functions_changed=len(delta.changed),
            functions_removed=len(delta.removed),
            pairs_reused=state.cache.run_hits,
            pairs_rescored=state.cache.run_misses,
            merges_spliced=state.cache.merges_spliced,
            merges_recomputed=state.cache.merges_recomputed,
            attempts=report.attempts,
            cache_evicted=state.cache.evicted - evicted_before,
            wall_seconds=merge_seconds,
        )
        state.report = report
        state.analysis_manager = manager
        if store is not None:
            with maybe_span(registry, "incremental.snapshot"):
                save_state(store, state)
        observe_pipeline_result(registry, result)
        observe_incremental_stats(registry, stats)
        record_pipeline_run(
            registry, result, mode="incremental",
            config={
                "target": target,
                "phi_coalescing": phi_coalescing,
                "search_strategy": search_strategy
                if isinstance(search_strategy, str)
                else type(search_strategy).__name__,
                "parallel_workers": parallel_workers,
                "parallel_backend": parallel_backend,
            },
            incremental=vars(stats))
    if registry is not None and not isinstance(metrics, MetricsRegistry):
        registry.close()
    return IncrementalRun(result=result, state=state, delta=delta,
                          stats=stats)
