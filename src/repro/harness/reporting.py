"""Plain-text rendering of experiment results.

Each ``format_*`` function turns the corresponding experiment result into the
rows the paper's figure/table reports, so running a benchmark prints something
directly comparable to the publication.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..analysis.manager import AnalysisStats
from ..parallel.stats import ParallelStats
from ..persist import StoreStats
from ..search.stats import SearchStats
from .experiments import (
    AnalysisCacheResult,
    ParallelRankingResult,
    SearchComparisonResult,
    WarmStartResult,
    Figure5Result,
    Figure19Result,
    Figure20Result,
    Figure21Result,
    Figure22Result,
    Figure23Result,
    Figure24Result,
    Figure25Result,
    ReductionResult,
    Table1Result,
)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a simple aligned text table."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_figure5(result: Figure5Result) -> str:
    rows = [(row.benchmark, row.size_before, row.size_after, f"{row.normalized:.2f}")
            for row in result.rows]
    rows.append(("GMean", "", "", f"{result.geomean_growth:.2f}"))
    return format_table(("benchmark", "insts before", "insts after reg2mem", "normalized"),
                        rows)


def format_reduction(result: ReductionResult) -> str:
    rows = [(row.benchmark, row.technique, row.threshold,
             f"{row.reduction_percent:.1f}%", row.profitable_merges, row.attempts)
            for row in result.rows]
    for (technique, threshold), value in result.summary().items():
        rows.append(("GMean", technique, threshold, f"{value:.1f}%", "", ""))
    return format_table(("benchmark", "technique", "t", "reduction", "merges", "attempts"),
                        rows)


def format_table1(result: Table1Result) -> str:
    rows = [(row.benchmark, row.num_functions,
             f"{row.min_size}/{row.avg_size:.1f}/{row.max_size}",
             row.fmsa_merges, row.salssa_merges) for row in result.rows]
    rows.append(("Total", "", "", result.total_fmsa, result.total_salssa))
    return format_table(("benchmark", "#fns", "min/avg/max size", "FMSA[t=1]", "SalSSA[t=1]"),
                        rows)


def format_figure19(result: Figure19Result) -> str:
    rows = [(index, f"{value:+.3f}%")
            for index, value in enumerate(result.contributions_percent)]
    rows.append(("total", f"{result.total_percent:+.3f}%"))
    return format_table(("merge #", "size contribution"), rows)


def format_figure20(result: Figure20Result) -> str:
    rows = [(row.benchmark, f"{row.fmsa:.1f}%", f"{row.salssa_nopc:.1f}%",
             f"{row.salssa:.1f}%") for row in result.rows]
    means = result.geomeans()
    rows.append(("GMean", f"{means['fmsa']:.1f}%", f"{means['salssa_nopc']:.1f}%",
                 f"{means['salssa']:.1f}%"))
    return format_table(("benchmark", "FMSA", "SalSSA-NoPC", "SalSSA"), rows)


def format_figure21(result: Figure21Result) -> str:
    rows = [(row.benchmark, row.fmsa_merges, row.salssa_merges) for row in result.rows]
    rows.append(("Total", result.total_fmsa, result.total_salssa))
    return format_table(("benchmark", "FMSA merges", "SalSSA merges"), rows)


def format_figure22(result: Figure22Result) -> str:
    rows = [(row.benchmark, f"{row.fmsa_bytes / 1e6:.2f} MB",
             f"{row.salssa_bytes / 1e6:.2f} MB",
             row.fmsa_dp_cells, row.salssa_dp_cells) for row in result.rows]
    rows.append(("GMean ratio", f"{result.mean_ratio:.2f}x", "", "", ""))
    return format_table(("benchmark", "FMSA peak", "SalSSA peak",
                         "FMSA DP cells", "SalSSA DP cells"), rows)


def format_figure23(result: Figure23Result) -> str:
    rows = [(row.benchmark, f"{row.alignment_speedup:.2f}x", f"{row.codegen_speedup:.2f}x")
            for row in result.rows]
    rows.append(("GMean", f"{result.geomean_alignment_speedup:.2f}x",
                 f"{result.geomean_codegen_speedup:.2f}x"))
    return format_table(("benchmark", "alignment speedup", "codegen speedup"), rows)


def format_figure24(result: Figure24Result) -> str:
    rows = [(row.benchmark, row.technique, row.threshold, f"{row.normalized_time:.2f}")
            for row in result.rows]
    seen = sorted({(r.technique, r.threshold) for r in result.rows})
    for technique, threshold in seen:
        rows.append(("GMean", technique, threshold,
                     f"{result.geomean(technique, threshold):.2f}"))
    return format_table(("benchmark", "technique", "t", "normalized compile time"), rows)


def format_analysis_stats(stats: AnalysisStats) -> str:
    """One-line summary of an analysis manager's cache counters."""
    recomputed = ", ".join(f"{name}: {count}" for name, count
                           in sorted(stats.computed_by_analysis.items()))
    return (f"analysis cache: {stats.hits} hits / {stats.misses} misses "
            f"({100.0 * stats.hit_rate:.1f}% hit rate), "
            f"{stats.invalidations} invalidations, "
            f"{stats.preserved} preservations"
            + (f" [{recomputed}]" if recomputed else ""))


def format_analysis_cache(result: AnalysisCacheResult) -> str:
    rows = []
    for row in result.rows:
        rows.append((row.num_functions, "cached" if row.cached else "uncached",
                     f"{row.wall_seconds * 1e3:.0f} ms",
                     row.domtree_constructions, row.fingerprint_constructions,
                     f"{100.0 * row.analysis_stats.hit_rate:.1f}%"
                     if row.analysis_stats else "n/a"))
    sizes = sorted({row.num_functions for row in result.rows})
    for size in sizes:
        rows.append((size, "ratio",
                     f"{result.speedup(size):.2f}x",
                     f"{result.construction_ratio(size, 'DominatorTree'):.2f}x",
                     f"{result.construction_ratio(size, 'Fingerprint'):.2f}x",
                     "match" if result.digests_match(size) else "MISMATCH"))
    return format_table(("#fns", "mode", "wall", "domtrees", "fingerprints",
                         "hit rate / digest"), rows)


def format_store_stats(stats: StoreStats) -> str:
    """One-line summary of an artifact store's counters."""
    extras = []
    if stats.corrupt_records:
        extras.append(f"{stats.corrupt_records} corrupt")
    if stats.schema_mismatches:
        extras.append(f"{stats.schema_mismatches} schema-mismatched")
    if stats.write_errors:
        extras.append(f"{stats.write_errors} write errors")
    return (f"artifact store: {stats.hits} hits / {stats.misses} misses "
            f"({100.0 * stats.hit_rate:.1f}% hit rate), {stats.stores} stores"
            + (f" [{', '.join(extras)}]" if extras else ""))


def format_warm_start(result: WarmStartResult) -> str:
    rows = []
    for row in result.rows:
        stats = row.persist_stats
        rows.append((row.num_functions, row.mode,
                     f"{row.wall_seconds * 1e3:.0f} ms",
                     row.signatures_computed, row.fingerprints_computed,
                     f"{100.0 * stats.hit_rate:.1f}%" if stats else "n/a"))
    for size in sorted({row.num_functions for row in result.rows}):
        rows.append((size, "ratio",
                     f"{result.speedup(size):.2f}x",
                     f"-{100.0 * result.computation_reduction(size, 'signatures'):.1f}%",
                     f"-{100.0 * result.computation_reduction(size, 'fingerprints'):.1f}%",
                     "match" if result.digests_match(size) else "MISMATCH"))
    return format_table(("#fns", "mode", "wall", "signatures", "fingerprints",
                         "store hit rate / digest"), rows)


def format_parallel_stats(stats: ParallelStats) -> str:
    """One-line summary of a worker-pool engine's counters."""
    return (f"parallel[{stats.backend} x{stats.workers}]: "
            f"{stats.functions_shipped} functions shipped in {stats.batches} "
            f"batches, {stats.fingerprints_computed}+{stats.fingerprints_loaded} "
            f"fingerprints computed+loaded, "
            f"{stats.signatures_computed}+{stats.signatures_loaded} signatures, "
            f"{stats.prefetched_used}/{stats.queries_prefetched} prefetched "
            f"queries used, {stats.pairs_scored} pairs scored")


def format_parallel_ranking(result: ParallelRankingResult) -> str:
    rows = []
    for row in result.rows:
        rows.append((row.num_functions, row.backend, row.workers,
                     f"{row.index_seconds * 1e3:.0f} ms",
                     f"{row.query_seconds * 1e3:.0f} ms",
                     f"{row.score_seconds * 1e3:.0f} ms",
                     f"{row.wall_seconds * 1e3:.0f} ms", ""))
    for size in sorted({row.num_functions for row in result.rows}):
        rows.append((size, "ratio", "", "", "", "",
                     f"{result.speedup(size):.2f}x",
                     "match" if result.digests_match(size) else "MISMATCH"))
    return format_table(("#fns", "backend", "workers", "index", "queries",
                         "scoring", "wall", "digest"), rows)


def format_search_stats(stats: SearchStats) -> str:
    """One-line summary of a merge run's candidate-search counters."""
    return (f"search[{stats.strategy}]: {stats.queries} queries, "
            f"{stats.candidates_scanned}/{stats.population_available} candidates "
            f"scanned ({100.0 * stats.scan_fraction:.1f}%), "
            f"{stats.candidates_returned} returned, "
            f"{stats.inserts} inserts / {stats.removals} removals / "
            f"{stats.updates} updates")


def format_search_comparison(result: SearchComparisonResult) -> str:
    rows = []
    for row in result.rows:
        speedup_ = result.speedup_over_exhaustive(row.strategy, row.num_functions)
        rows.append((row.num_functions, row.strategy,
                     f"{row.build_seconds * 1e3:.1f} ms",
                     f"{row.avg_query_micros:.0f} us", f"{row.recall:.3f}",
                     f"{row.quality:.3f}", f"{100.0 * row.scan_fraction:.1f}%",
                     f"{speedup_:.1f}x" if speedup_ > 0 else "n/a"))
    return format_table(("#fns", "strategy", "build", "query", "recall",
                         "quality", "scanned", "speedup"), rows)


def format_figure25(result: Figure25Result) -> str:
    rows = [(row.benchmark, row.technique, row.baseline_steps, row.merged_steps,
             f"{row.normalized_runtime:.2f}") for row in result.rows]
    for technique in ("fmsa", "salssa"):
        rows.append(("GMean", technique, "", "", f"{result.geomean(technique):.2f}"))
    return format_table(("benchmark", "technique", "baseline steps", "merged steps",
                         "normalized runtime"), rows)
