"""Experiment harness: the pipeline, measurements and per-figure runners."""

from .metrics import (
    Measurement,
    arithmetic_mean,
    combine_analysis_stats,
    combine_search_stats,
    combine_store_stats,
    geometric_mean,
    measure_peak_memory,
    measure_time,
    speedup,
    stopwatch,
)
from .pipeline import PipelineResult, baseline_compile, make_pass_options, run_pipeline
from .experiments import (
    DEFAULT_MIBENCH_SUBSET,
    DEFAULT_SPEC_SUBSET,
    AnalysisCacheResult,
    AnalysisCacheRow,
    SearchComparisonResult,
    SearchComparisonRow,
    WarmStartResult,
    WarmStartRow,
    analysis_cache_comparison,
    candidate_search_comparison,
    merge_report_digest,
    search_workload,
    warm_start_comparison,
    Figure5Result,
    Figure19Result,
    Figure20Result,
    Figure21Result,
    Figure22Result,
    Figure23Result,
    Figure24Result,
    Figure25Result,
    ReductionResult,
    Table1Result,
    figure5_reg2mem_growth,
    figure17_spec_reduction,
    figure18_mibench_reduction,
    figure19_merge_breakdown,
    figure20_phi_coalescing,
    figure21_profitable_merges,
    figure22_memory_usage,
    figure23_stage_speedups,
    figure24_compile_time,
    figure25_runtime_overhead,
    table1_mibench_merges,
)
from . import reporting

__all__ = [name for name in dir() if not name.startswith("_")]
