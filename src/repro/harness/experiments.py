"""Experiment runners: one function per table/figure of the paper's evaluation.

Every runner is deterministic (workloads are seeded) and returns a small
result dataclass with per-benchmark rows plus the aggregate the paper quotes
(usually a geometric mean).  The benchmark harness under ``benchmarks/`` calls
these runners and prints the same rows the paper's figures show.

To keep CPython runtimes reasonable the default arguments evaluate a subset of
benchmarks and thresholds; pass ``benchmarks=None``/``thresholds=(1, 5, 10)``
explicitly for the full sweep (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..analysis.counters import track_constructions
from ..analysis.manager import AnalysisStats, ModuleAnalysisManager
from ..analysis.size_model import get_target
from ..ir.interpreter import run_function
from ..ir.module import Module
from ..ir.verifier import verify_module
from ..merge.pass_manager import FunctionMergingPass, MergeReport
from ..parallel import ParallelConfig, ParallelEngine, ParallelStats
from ..persist import ArtifactStore, StoreStats
from ..search import SearchStrategy, make_index, topk_recall
from ..search.stats import quality_recall
from ..transforms.mem2reg import promote_module
from ..transforms.reg2mem import demote_function, demote_module
from ..transforms.simplify import simplify_module
from ..workloads.generator import (
    FamilySpec,
    ProgramSpec,
    generate_program,
    generate_program_in_batches,
)
from ..workloads.mibench_like import MIBENCH, MiBenchSpec
from ..workloads.spec_like import BenchmarkSpec, get_suite
from .metrics import geometric_mean, measure_peak_memory
from .pipeline import PipelineResult, baseline_compile, make_pass_options, run_pipeline

#: Default subset used by the quick benchmarks (a representative mix of C and
#: C++-like programs, including the template-heavy outlier).
DEFAULT_SPEC_SUBSET: Tuple[str, ...] = (
    "401.bzip2", "429.mcf", "433.milc", "444.namd", "447.dealII",
    "456.hmmer", "462.libquantum", "470.lbm", "471.omnetpp", "482.sphinx3",
)
DEFAULT_MIBENCH_SUBSET: Tuple[str, ...] = (
    "CRC32", "adpcm_c", "bitcount", "cjpeg", "dijkstra", "djpeg", "gsm",
    "qsort", "sha", "stringsearch", "susan", "typeset",
)


def _select_benchmarks(suite: Sequence, names: Optional[Iterable[str]]):
    if names is None:
        return list(suite)
    wanted = set(names)
    return [spec for spec in suite if spec.name in wanted]


# ---------------------------------------------------------------------------
# Figure 5 — function growth under register demotion
# ---------------------------------------------------------------------------

@dataclass
class Figure5Row:
    benchmark: str
    size_before: int
    size_after: int

    @property
    def normalized(self) -> float:
        return self.size_after / self.size_before if self.size_before else 1.0


@dataclass
class Figure5Result:
    rows: List[Figure5Row] = field(default_factory=list)

    @property
    def geomean_growth(self) -> float:
        return geometric_mean(row.normalized for row in self.rows)


def figure5_reg2mem_growth(suite: str = "spec2006",
                           benchmarks: Optional[Iterable[str]] = DEFAULT_SPEC_SUBSET
                           ) -> Figure5Result:
    """Average normalised function size before/after register demotion (Fig. 5)."""
    result = Figure5Result()
    for spec in _select_benchmarks(get_suite(suite), benchmarks):
        module = spec.build()
        simplify_module(module)
        before = module.num_instructions()
        for function in module.defined_functions():
            demote_function(function)
        after = module.num_instructions()
        result.rows.append(Figure5Row(spec.name, before, after))
    return result


# ---------------------------------------------------------------------------
# Figures 17 / 18 — code size reduction over the LTO baseline
# ---------------------------------------------------------------------------

@dataclass
class ReductionRow:
    benchmark: str
    technique: str
    threshold: int
    reduction_percent: float
    profitable_merges: int
    attempts: int


@dataclass
class ReductionResult:
    suite: str
    target: str
    rows: List[ReductionRow] = field(default_factory=list)

    def reductions(self, technique: str, threshold: int) -> List[float]:
        return [row.reduction_percent for row in self.rows
                if row.technique == technique and row.threshold == threshold]

    def geomean(self, technique: str, threshold: int) -> float:
        values = [max(0.0, value) / 100.0 + 1.0
                  for value in self.reductions(technique, threshold)]
        return (geometric_mean(values) - 1.0) * 100.0 if values else 0.0

    def summary(self) -> Dict[Tuple[str, int], float]:
        keys = {(row.technique, row.threshold) for row in self.rows}
        return {key: self.geomean(*key) for key in sorted(keys)}


def _reduction_experiment(suite_specs, suite_name: str, target: str,
                          techniques: Sequence[str], thresholds: Sequence[int],
                          benchmarks: Optional[Iterable[str]],
                          search_strategy: Union[str, SearchStrategy] = "exhaustive",
                          cache_dir: Optional[str] = None,
                          parallel_workers: int = 0,
                          parallel_backend: str = "process"
                          ) -> ReductionResult:
    result = ReductionResult(suite_name, target)
    for spec in _select_benchmarks(suite_specs, benchmarks):
        for technique in techniques:
            for threshold in thresholds:
                module = spec.build()
                run = run_pipeline(module, spec.name, technique, threshold, target,
                                   search_strategy=search_strategy,
                                   cache_dir=cache_dir,
                                   parallel_workers=parallel_workers,
                                   parallel_backend=parallel_backend)
                report = run.report
                result.rows.append(ReductionRow(
                    spec.name, technique, threshold, run.reduction_percent,
                    report.profitable_merges if report else 0,
                    report.attempts if report else 0))
    return result


def figure17_spec_reduction(suite: str = "spec2006",
                            techniques: Sequence[str] = ("fmsa", "salssa"),
                            thresholds: Sequence[int] = (1,),
                            benchmarks: Optional[Iterable[str]] = DEFAULT_SPEC_SUBSET,
                            search_strategy: Union[str, SearchStrategy] = "exhaustive",
                            cache_dir: Optional[str] = None,
                            parallel_workers: int = 0,
                            parallel_backend: str = "process"
                            ) -> ReductionResult:
    """Linked-object size reduction over LTO on the SPEC-like suites (Fig. 17)."""
    return _reduction_experiment(get_suite(suite), suite, "x86_64",
                                 techniques, thresholds, benchmarks,
                                 search_strategy=search_strategy,
                                 cache_dir=cache_dir,
                                 parallel_workers=parallel_workers,
                                 parallel_backend=parallel_backend)


def figure18_mibench_reduction(techniques: Sequence[str] = ("fmsa", "salssa"),
                               thresholds: Sequence[int] = (1,),
                               benchmarks: Optional[Iterable[str]] = DEFAULT_MIBENCH_SUBSET,
                               search_strategy: Union[str, SearchStrategy] = "exhaustive",
                               cache_dir: Optional[str] = None,
                               parallel_workers: int = 0,
                               parallel_backend: str = "process"
                               ) -> ReductionResult:
    """Linked-object size reduction on the MiBench-like suite, ARM-Thumb model (Fig. 18)."""
    return _reduction_experiment(MIBENCH, "mibench", "arm_thumb",
                                 techniques, thresholds, benchmarks,
                                 search_strategy=search_strategy,
                                 cache_dir=cache_dir,
                                 parallel_workers=parallel_workers,
                                 parallel_backend=parallel_backend)


# ---------------------------------------------------------------------------
# Table 1 — MiBench population and merge counts
# ---------------------------------------------------------------------------

@dataclass
class Table1Row:
    benchmark: str
    num_functions: int
    min_size: int
    avg_size: float
    max_size: int
    fmsa_merges: int
    salssa_merges: int


@dataclass
class Table1Result:
    rows: List[Table1Row] = field(default_factory=list)

    @property
    def total_fmsa(self) -> int:
        return sum(row.fmsa_merges for row in self.rows)

    @property
    def total_salssa(self) -> int:
        return sum(row.salssa_merges for row in self.rows)


def table1_mibench_merges(benchmarks: Optional[Iterable[str]] = DEFAULT_MIBENCH_SUBSET
                          ) -> Table1Result:
    """Function counts/sizes and merge operations per MiBench program (Table 1)."""
    result = Table1Result()
    for spec in _select_benchmarks(MIBENCH, benchmarks):
        merges: Dict[str, int] = {}
        sizes: List[int] = []
        for technique in ("fmsa", "salssa"):
            module = spec.build()
            simplify_module(module)
            if technique == "fmsa":
                sizes = [f.num_instructions() for f in module.defined_functions()]
            options = make_pass_options(technique, 1, get_target("arm_thumb"))
            report = FunctionMergingPass(options).run(module)
            merges[technique] = report.profitable_merges
        result.rows.append(Table1Row(
            spec.name, len(sizes), min(sizes) if sizes else 0,
            sum(sizes) / len(sizes) if sizes else 0.0, max(sizes) if sizes else 0,
            merges["fmsa"], merges["salssa"]))
    return result


# ---------------------------------------------------------------------------
# Figure 19 — per-merge contribution breakdown (djpeg)
# ---------------------------------------------------------------------------

@dataclass
class Figure19Result:
    benchmark: str
    baseline_size: int
    contributions_percent: List[float] = field(default_factory=list)

    @property
    def total_percent(self) -> float:
        return sum(self.contributions_percent)


def figure19_merge_breakdown(benchmark: str = "djpeg") -> Figure19Result:
    """Per-merge-operation contribution to the final size on djpeg (Fig. 19)."""
    spec = next(s for s in MIBENCH if s.name == benchmark)
    module = spec.build()
    simplify_module(module)
    size_model = get_target("arm_thumb")
    baseline = size_model.module_size(module)
    options = make_pass_options("salssa", 1, size_model)
    report = FunctionMergingPass(options).run(module)
    result = Figure19Result(benchmark, baseline)
    for record in report.committed_records:
        # Positive = this merge shrank the object, negative = it grew it.
        result.contributions_percent.append(100.0 * record.decision.benefit / baseline)
    return result


# ---------------------------------------------------------------------------
# Figure 20 — phi-node coalescing ablation
# ---------------------------------------------------------------------------

@dataclass
class Figure20Row:
    benchmark: str
    fmsa: float
    salssa_nopc: float
    salssa: float


@dataclass
class Figure20Result:
    rows: List[Figure20Row] = field(default_factory=list)

    def geomeans(self) -> Dict[str, float]:
        def agg(values: List[float]) -> float:
            return (geometric_mean([max(0.0, v) / 100.0 + 1.0 for v in values]) - 1.0) * 100.0
        return {
            "fmsa": agg([r.fmsa for r in self.rows]),
            "salssa_nopc": agg([r.salssa_nopc for r in self.rows]),
            "salssa": agg([r.salssa for r in self.rows]),
        }


def figure20_phi_coalescing(suite: str = "spec2006",
                            benchmarks: Optional[Iterable[str]] = DEFAULT_SPEC_SUBSET
                            ) -> Figure20Result:
    """Impact of phi-node coalescing: FMSA vs SalSSA-NoPC vs SalSSA (Fig. 20)."""
    result = Figure20Result()
    for spec in _select_benchmarks(get_suite(suite), benchmarks):
        reductions: Dict[str, float] = {}
        for key, technique, coalescing in (("fmsa", "fmsa", True),
                                           ("salssa_nopc", "salssa", False),
                                           ("salssa", "salssa", True)):
            module = spec.build()
            run = run_pipeline(module, spec.name, technique, 1, "x86_64",
                               phi_coalescing=coalescing)
            reductions[key] = run.reduction_percent
        result.rows.append(Figure20Row(spec.name, reductions["fmsa"],
                                       reductions["salssa_nopc"], reductions["salssa"]))
    return result


# ---------------------------------------------------------------------------
# Figure 21 — number of profitable merge operations
# ---------------------------------------------------------------------------

@dataclass
class Figure21Row:
    benchmark: str
    fmsa_merges: int
    salssa_merges: int


@dataclass
class Figure21Result:
    rows: List[Figure21Row] = field(default_factory=list)

    @property
    def total_fmsa(self) -> int:
        return sum(r.fmsa_merges for r in self.rows)

    @property
    def total_salssa(self) -> int:
        return sum(r.salssa_merges for r in self.rows)


def figure21_profitable_merges(suite: str = "spec2006",
                               benchmarks: Optional[Iterable[str]] = DEFAULT_SPEC_SUBSET
                               ) -> Figure21Result:
    """Total profitable merge operations, FMSA vs SalSSA at t=1 (Fig. 21)."""
    result = Figure21Result()
    for spec in _select_benchmarks(get_suite(suite), benchmarks):
        merges: Dict[str, int] = {}
        for technique in ("fmsa", "salssa"):
            module = spec.build()
            run = run_pipeline(module, spec.name, technique, 1, "x86_64")
            merges[technique] = run.report.profitable_merges if run.report else 0
        result.rows.append(Figure21Row(spec.name, merges["fmsa"], merges["salssa"]))
    return result


# ---------------------------------------------------------------------------
# Figure 22 — peak memory usage of the merging pass
# ---------------------------------------------------------------------------

@dataclass
class Figure22Row:
    benchmark: str
    fmsa_bytes: int
    salssa_bytes: int
    fmsa_dp_cells: int
    salssa_dp_cells: int


@dataclass
class Figure22Result:
    rows: List[Figure22Row] = field(default_factory=list)

    @property
    def mean_ratio(self) -> float:
        ratios = [row.fmsa_bytes / row.salssa_bytes for row in self.rows
                  if row.salssa_bytes > 0]
        return geometric_mean(ratios) if ratios else 0.0


def figure22_memory_usage(suite: str = "spec2006",
                          benchmarks: Optional[Iterable[str]] = DEFAULT_SPEC_SUBSET
                          ) -> Figure22Result:
    """Peak memory while running the merging pass, FMSA vs SalSSA (Fig. 22)."""
    result = Figure22Result()
    for spec in _select_benchmarks(get_suite(suite), benchmarks):
        peaks: Dict[str, int] = {}
        cells: Dict[str, int] = {}
        for technique in ("fmsa", "salssa"):
            module = spec.build()
            run = run_pipeline(module, spec.name, technique, 1, "x86_64",
                               measure_memory=True)
            peaks[technique] = run.peak_merge_bytes
            cells[technique] = run.report.peak_alignment_cells if run.report else 0
        result.rows.append(Figure22Row(spec.name, peaks["fmsa"], peaks["salssa"],
                                       cells["fmsa"], cells["salssa"]))
    return result


# ---------------------------------------------------------------------------
# Figure 23 — alignment + codegen speedup
# ---------------------------------------------------------------------------

@dataclass
class Figure23Row:
    benchmark: str
    fmsa_alignment_seconds: float
    salssa_alignment_seconds: float
    fmsa_codegen_seconds: float
    salssa_codegen_seconds: float

    @property
    def alignment_speedup(self) -> float:
        return self.fmsa_alignment_seconds / self.salssa_alignment_seconds \
            if self.salssa_alignment_seconds > 0 else 0.0

    @property
    def codegen_speedup(self) -> float:
        return self.fmsa_codegen_seconds / self.salssa_codegen_seconds \
            if self.salssa_codegen_seconds > 0 else 0.0


@dataclass
class Figure23Result:
    rows: List[Figure23Row] = field(default_factory=list)

    @property
    def geomean_alignment_speedup(self) -> float:
        return geometric_mean(r.alignment_speedup for r in self.rows if r.alignment_speedup > 0)

    @property
    def geomean_codegen_speedup(self) -> float:
        return geometric_mean(r.codegen_speedup for r in self.rows if r.codegen_speedup > 0)


def figure23_stage_speedups(suite: str = "spec2006",
                            benchmarks: Optional[Iterable[str]] = DEFAULT_SPEC_SUBSET
                            ) -> Figure23Result:
    """Speedup of SalSSA over FMSA on alignment and code generation (Fig. 23)."""
    result = Figure23Result()
    for spec in _select_benchmarks(get_suite(suite), benchmarks):
        timings: Dict[str, Tuple[float, float]] = {}
        for technique in ("fmsa", "salssa"):
            module = spec.build()
            run = run_pipeline(module, spec.name, technique, 1, "x86_64")
            report = run.report
            timings[technique] = (report.alignment_seconds, report.codegen_seconds) \
                if report else (0.0, 0.0)
        result.rows.append(Figure23Row(spec.name, timings["fmsa"][0], timings["salssa"][0],
                                       timings["fmsa"][1], timings["salssa"][1]))
    return result


# ---------------------------------------------------------------------------
# Figure 24 — end-to-end compile-time overhead
# ---------------------------------------------------------------------------

@dataclass
class Figure24Row:
    benchmark: str
    technique: str
    threshold: int
    normalized_time: float


@dataclass
class Figure24Result:
    rows: List[Figure24Row] = field(default_factory=list)

    def geomean(self, technique: str, threshold: int) -> float:
        values = [row.normalized_time for row in self.rows
                  if row.technique == technique and row.threshold == threshold]
        return geometric_mean(values) if values else 0.0

    def overhead_ratio(self, threshold: int = 1) -> float:
        """How much larger FMSA's overhead is than SalSSA's (paper: ~3x)."""
        salssa = self.geomean("salssa", threshold) - 1.0
        fmsa = self.geomean("fmsa", threshold) - 1.0
        return fmsa / salssa if salssa > 0 else float("inf")


def figure24_compile_time(suite: str = "spec2006",
                          thresholds: Sequence[int] = (1,),
                          benchmarks: Optional[Iterable[str]] = DEFAULT_SPEC_SUBSET
                          ) -> Figure24Result:
    """End-to-end compile time normalised to the no-merging baseline (Fig. 24)."""
    result = Figure24Result()
    for spec in _select_benchmarks(get_suite(suite), benchmarks):
        for technique in ("fmsa", "salssa"):
            for threshold in thresholds:
                module = spec.build()
                run = run_pipeline(module, spec.name, technique, threshold, "x86_64")
                result.rows.append(Figure24Row(spec.name, technique, threshold,
                                               run.normalized_compile_time))
    return result


# ---------------------------------------------------------------------------
# Figure 25 — program runtime overhead
# ---------------------------------------------------------------------------

@dataclass
class Figure25Row:
    benchmark: str
    technique: str
    baseline_steps: int
    merged_steps: int

    @property
    def normalized_runtime(self) -> float:
        return self.merged_steps / self.baseline_steps if self.baseline_steps else 1.0


@dataclass
class Figure25Result:
    rows: List[Figure25Row] = field(default_factory=list)

    def geomean(self, technique: str) -> float:
        return geometric_mean(row.normalized_runtime for row in self.rows
                              if row.technique == technique)


def _dynamic_steps(module: Module, benchmark: str,
                   analysis_manager: Optional[ModuleAnalysisManager] = None) -> int:
    main_name = f"{benchmark.replace('.', '_')}_main"
    main = module.get_function(main_name)
    if main is None:
        return 0
    total = 0
    for argument in (1, 5, 9):
        result = run_function(module, main, (argument,), max_steps=2_000_000,
                              analysis_manager=analysis_manager)
        total += result.steps
    return total


def figure25_runtime_overhead(suite: str = "spec2006",
                              benchmarks: Optional[Iterable[str]] = DEFAULT_SPEC_SUBSET
                              ) -> Figure25Result:
    """Dynamic instruction overhead of merged programs (Fig. 25 proxy).

    The post-merge dynamic runs share the pipeline's analysis manager, so the
    interpreter reuses the block plans (and any CFG facts the verifier left
    behind) instead of re-deriving them for every input argument.
    """
    result = Figure25Result()
    for spec in _select_benchmarks(get_suite(suite), benchmarks):
        baseline_module = spec.build()
        baseline_manager = ModuleAnalysisManager(baseline_module)
        simplify_module(baseline_module, baseline_manager)
        baseline_steps = _dynamic_steps(baseline_module, spec.name, baseline_manager)
        if baseline_steps == 0:
            continue
        for technique in ("fmsa", "salssa"):
            module = spec.build()
            manager = ModuleAnalysisManager(module)
            run_pipeline(module, spec.name, technique, 1, "x86_64",
                         analysis_manager=manager)
            merged_steps = _dynamic_steps(module, spec.name, manager)
            result.rows.append(Figure25Row(spec.name, technique,
                                           baseline_steps, merged_steps))
    return result


# ---------------------------------------------------------------------------
# Candidate-search scaling: exhaustive vs sub-linear indexes (repro.search)
# ---------------------------------------------------------------------------

def search_workload(num_functions: int, seed: int = 7,
                    batch_size: int = 1024) -> Module:
    """A mibench-like module for candidate-search experiments.

    Mirrors the population structure of the larger MiBench programs — mostly
    clone families of 2-4 similar functions with heterogeneous size targets,
    plus a minority of standalone functions — but scales to arbitrary function
    counts, which the real table-driven specs (capped at 48 functions) cannot.

    Generation is batched (:func:`generate_program_in_batches`) so very large
    populations build in linear time; modules up to ``batch_size`` functions
    are bit-identical to the historical single-shot generation.
    """
    rng = random.Random(seed)
    families: List[FamilySpec] = []
    remaining = int(num_functions * 0.8)
    while remaining >= 2:
        family_size = min(rng.randint(2, 4), remaining)
        families.append(FamilySpec(
            size=family_size, divergence=0.07,
            function_size=rng.choice((12, 18, 26, 38, 55, 80))))
        remaining -= family_size
    spec = ProgramSpec(
        name=f"search{num_functions}", seed=seed, families=families,
        standalone_functions=num_functions - sum(f.size for f in families),
        standalone_size=30, with_main=False)
    module = generate_program_in_batches(spec, batch_size=batch_size)
    simplify_module(module)
    return module


@dataclass
class SearchComparisonRow:
    """One (module size, strategy) measurement of the candidate search."""

    num_functions: int
    strategy: str
    build_seconds: float
    query_seconds: float
    queries: int
    recall: float
    quality: float
    scan_fraction: float

    @property
    def avg_query_micros(self) -> float:
        return 1e6 * self.query_seconds / self.queries if self.queries else 0.0


@dataclass
class SearchComparisonResult:
    top_k: int
    rows: List[SearchComparisonRow] = field(default_factory=list)

    def for_strategy(self, strategy: str) -> List[SearchComparisonRow]:
        return [row for row in self.rows if row.strategy == strategy]

    def speedup_over_exhaustive(self, strategy: str,
                                num_functions: int) -> float:
        """Query-time speedup of ``strategy`` at one module size.

        Returns 0.0 when there is no exhaustive reference row for that size
        (e.g. the comparison ran without the exhaustive strategy).
        """
        by_size = {row.num_functions: row for row in self.for_strategy("exhaustive")}
        reference = by_size.get(num_functions)
        for row in self.for_strategy(strategy):
            if row.num_functions == num_functions and reference is not None \
                    and row.query_seconds > 0:
                return reference.query_seconds / row.query_seconds
        return 0.0


def merge_report_digest(report: MergeReport) -> Tuple:
    """A deterministic summary of everything a merge run decided.

    Excludes wall-clock fields, so two runs over identical modules must
    produce equal digests — this is the bit-identity check used by the
    analysis-cache comparison and the cached-vs-uncached parity tests.
    """
    return (
        report.technique,
        report.size_before,
        report.size_after,
        report.instructions_before,
        report.instructions_after,
        report.attempts,
        report.profitable_merges,
        tuple((r.first, r.second, r.merged, r.committed,
               r.matched_instructions, r.alignment_dp_cells, r.decision)
              for r in report.records),
    )


# ---------------------------------------------------------------------------
# Analysis-cache comparison: the manager's recomputation savings (repro.analysis)
# ---------------------------------------------------------------------------

@dataclass
class AnalysisCacheRow:
    """One (module size, cached?) measurement of the analysis-manager workload."""

    num_functions: int
    cached: bool
    wall_seconds: float
    domtree_constructions: int
    fingerprint_constructions: int
    liveness_constructions: int
    analysis_stats: Optional[AnalysisStats]
    report_digest: Tuple


@dataclass
class AnalysisCacheResult:
    """Cached-vs-uncached comparison rows, per module size."""

    rows: List[AnalysisCacheRow] = field(default_factory=list)

    def row(self, num_functions: int, cached: bool) -> Optional[AnalysisCacheRow]:
        for row in self.rows:
            if row.num_functions == num_functions and row.cached == cached:
                return row
        return None

    def construction_ratio(self, num_functions: int, analysis: str) -> float:
        """How many times more constructions the uncached run needed."""
        uncached = self.row(num_functions, cached=False)
        cached = self.row(num_functions, cached=True)
        if uncached is None or cached is None:
            return 0.0
        counts = {
            "DominatorTree": (uncached.domtree_constructions,
                              cached.domtree_constructions),
            "Fingerprint": (uncached.fingerprint_constructions,
                            cached.fingerprint_constructions),
            "LivenessInfo": (uncached.liveness_constructions,
                             cached.liveness_constructions),
        }
        cold, warm = counts[analysis]
        return cold / warm if warm else float("inf")

    def speedup(self, num_functions: int) -> float:
        uncached = self.row(num_functions, cached=False)
        cached = self.row(num_functions, cached=True)
        if uncached is None or cached is None or cached.wall_seconds <= 0:
            return 0.0
        return uncached.wall_seconds / cached.wall_seconds

    def digests_match(self, num_functions: int) -> bool:
        uncached = self.row(num_functions, cached=False)
        cached = self.row(num_functions, cached=True)
        return uncached is not None and cached is not None \
            and uncached.report_digest == cached.report_digest


def _analysis_cache_workload(module: Module,
                             manager: Optional[ModuleAnalysisManager],
                             technique: str, target: str) -> MergeReport:
    """The multi-consumer workload whose analysis traffic the bench measures.

    Mirrors one full experiment iteration: input-IR verification, the
    Figure-5-style register demotion/promotion round trip, re-verification, a
    candidate-search strategy comparison over the same module (two extra
    index builds — what ``candidate_search_comparison`` does), the merging
    pass itself and a post-merge verification.  Uncached, every stage
    recomputes its dominator trees and fingerprints from scratch; with a
    shared manager the tree built for the input verification survives the
    whole demote/promote round trip (both declare the CFG analyses preserved)
    and the SSA-repair tree is shared inside every merge attempt.
    """
    verify_module(module, raise_on_error=False, manager=manager)
    demote_module(module, manager)
    promote_module(module, manager)
    verify_module(module, raise_on_error=False, manager=manager)
    for strategy in ("exhaustive", "minhash_lsh"):
        make_index(module, strategy, min_size=3, analysis_manager=manager)
    options = make_pass_options(technique, 1, get_target(target))
    report = FunctionMergingPass(options).run(module, analysis_manager=manager)
    verify_module(module, raise_on_error=False, manager=manager)
    return report


def analysis_cache_comparison(sizes: Sequence[int] = (128, 256),
                              technique: str = "salssa",
                              target: str = "arm_thumb",
                              seed: int = 7) -> AnalysisCacheResult:
    """Compare analysis recomputation with and without the shared manager.

    Both runs execute the identical deterministic workload on identically
    generated modules; the merge-report digests must match bit for bit, the
    construction counters must not.
    """
    result = AnalysisCacheResult()
    for num_functions in sizes:
        for cached in (False, True):
            module = search_workload(num_functions, seed=seed)
            manager = ModuleAnalysisManager(module) if cached else None
            with track_constructions() as tracker:
                started = time.perf_counter()
                report = _analysis_cache_workload(module, manager, technique, target)
                wall_seconds = time.perf_counter() - started
            result.rows.append(AnalysisCacheRow(
                num_functions=num_functions,
                cached=cached,
                wall_seconds=wall_seconds,
                domtree_constructions=tracker.delta("DominatorTree"),
                fingerprint_constructions=tracker.delta("Fingerprint"),
                liveness_constructions=tracker.delta("LivenessInfo"),
                analysis_stats=manager.stats if manager else None,
                report_digest=merge_report_digest(report)))
    return result


# ---------------------------------------------------------------------------
# Warm-start comparison: the persistent artifact store's savings (repro.persist)
# ---------------------------------------------------------------------------

@dataclass
class WarmStartRow:
    """One (module size, cold/warm) pipeline run against a shared store."""

    num_functions: int
    mode: str  # "cold" (store empty) or "warm" (store populated by the cold run)
    wall_seconds: float
    signatures_computed: int
    fingerprints_computed: int
    persist_stats: Optional[StoreStats]
    report_digest: Tuple


@dataclass
class WarmStartResult:
    """Cold-vs-warm comparison rows, per module size."""

    rows: List[WarmStartRow] = field(default_factory=list)

    def row(self, num_functions: int, mode: str) -> Optional[WarmStartRow]:
        for row in self.rows:
            if row.num_functions == num_functions and row.mode == mode:
                return row
        return None

    def digests_match(self, num_functions: int) -> bool:
        cold = self.row(num_functions, "cold")
        warm = self.row(num_functions, "warm")
        return cold is not None and warm is not None \
            and cold.report_digest == warm.report_digest

    def computation_reduction(self, num_functions: int, counter: str) -> float:
        """Fraction of the cold run's computations the warm run avoided.

        ``counter`` is ``"signatures"`` or ``"fingerprints"``.  1.0 means the
        warm run computed nothing; 0.0 means it saved nothing (or there was
        nothing to save).
        """
        cold = self.row(num_functions, "cold")
        warm = self.row(num_functions, "warm")
        if cold is None or warm is None:
            return 0.0
        attr = f"{counter}_computed"
        cold_count = getattr(cold, attr)
        warm_count = getattr(warm, attr)
        if cold_count <= 0:
            return 0.0
        return 1.0 - warm_count / cold_count

    def speedup(self, num_functions: int) -> float:
        cold = self.row(num_functions, "cold")
        warm = self.row(num_functions, "warm")
        if cold is None or warm is None or warm.wall_seconds <= 0:
            return 0.0
        return cold.wall_seconds / warm.wall_seconds


def warm_start_comparison(sizes: Sequence[int] = (128,),
                          cache_dir: Optional[str] = None,
                          technique: str = "salssa",
                          target: str = "arm_thumb",
                          search_strategy: Union[str, SearchStrategy] = "minhash_lsh",
                          seed: int = 7) -> WarmStartResult:
    """Run the pipeline twice per size against one shared artifact store.

    The first (cold) run populates ``cache_dir``; the second (warm) run must
    produce a bit-identical merge report while computing a small fraction of
    the MinHash signatures and fingerprints — the acceptance bar asserted by
    ``benchmarks/bench_persist.py``.  Each size gets its own store subtree so
    cold runs are genuinely cold (same-seed workloads of different sizes
    share their leading families, which would otherwise pre-warm them).
    """
    if cache_dir is None:
        raise ValueError("warm_start_comparison needs a cache_dir")
    result = WarmStartResult()
    for num_functions in sizes:
        size_dir = os.path.join(cache_dir, f"size{num_functions}")
        for mode in ("cold", "warm"):
            module = search_workload(num_functions, seed=seed)
            with track_constructions() as tracker:
                started = time.perf_counter()
                run = run_pipeline(module, f"warm{num_functions}", technique, 1,
                                   target, search_strategy=search_strategy,
                                   cache_dir=size_dir)
                wall_seconds = time.perf_counter() - started
            result.rows.append(WarmStartRow(
                num_functions=num_functions,
                mode=mode,
                wall_seconds=wall_seconds,
                signatures_computed=tracker.delta("MinHashSignature"),
                fingerprints_computed=tracker.delta("Fingerprint"),
                persist_stats=run.persist_stats,
                report_digest=merge_report_digest(run.report)))
    return result


# ---------------------------------------------------------------------------
# Parallel ranking: serial vs worker-pool execution of the read-only phases
# ---------------------------------------------------------------------------

def parallel_workload(num_functions: int, seed: int = 7,
                      batch_size: int = 1024) -> Module:
    """A clone-family module sized for the parallel ranking benchmarks.

    Same population structure as :func:`search_workload` but with the larger
    function bodies real post-demotion IR has (alignment cost is quadratic in
    body length, so the ranking phase's compute density — and therefore what
    a worker pool can win — depends on realistic sizes, not toy ones).
    """
    rng = random.Random(seed)
    families: List[FamilySpec] = []
    remaining = int(num_functions * 0.8)
    while remaining >= 2:
        family_size = min(rng.randint(2, 4), remaining)
        families.append(FamilySpec(
            size=family_size, divergence=0.07,
            function_size=rng.choice((30, 45, 65, 95, 130))))
        remaining -= family_size
    spec = ProgramSpec(
        name=f"parallel{num_functions}", seed=seed, families=families,
        standalone_functions=num_functions - sum(f.size for f in families),
        standalone_size=60, with_main=False)
    module = generate_program_in_batches(spec, batch_size=batch_size)
    simplify_module(module)
    return module


@dataclass
class ParallelRankingRow:
    """One (module size, backend) measurement of the ranking+scoring phase."""

    num_functions: int
    backend: str
    workers: int
    index_seconds: float
    query_seconds: float
    score_seconds: float
    queries: int
    pairs_scored: int
    parallel_stats: Optional[ParallelStats]
    ranking_digest: Tuple

    @property
    def wall_seconds(self) -> float:
        return self.index_seconds + self.query_seconds + self.score_seconds


@dataclass
class ParallelRankingResult:
    """Serial-vs-process comparison rows of the ranking+scoring phase."""

    top_k: int
    rows: List[ParallelRankingRow] = field(default_factory=list)

    def row(self, num_functions: int, backend: str) -> Optional[ParallelRankingRow]:
        for row in self.rows:
            if row.num_functions == num_functions and row.backend == backend:
                return row
        return None

    def speedup(self, num_functions: int, backend: str = "process") -> float:
        """Wall-clock speedup of ``backend`` over the serial reference."""
        serial = self.row(num_functions, "serial")
        measured = self.row(num_functions, backend)
        if serial is None or measured is None or measured.wall_seconds <= 0:
            return 0.0
        return serial.wall_seconds / measured.wall_seconds

    def digests_match(self, num_functions: int) -> bool:
        digests = {row.ranking_digest for row in self.rows
                   if row.num_functions == num_functions}
        return len(digests) == 1


def parallel_ranking_comparison(sizes: Sequence[int] = (256,),
                                workers: int = 4,
                                backends: Sequence[str] = ("serial", "process"),
                                top_k: int = 5,
                                strategy: Union[str, SearchStrategy] = "minhash_lsh",
                                target: str = "x86_64",
                                cache_dir: Optional[str] = None,
                                seed: int = 7) -> ParallelRankingResult:
    """Run the read-only ranking+scoring phase once per backend and compare.

    The phase is the merge pipeline's parallel hot path end to end: index
    construction (fingerprints + MinHash signatures), a ``candidates_for``
    query for every indexed function, and alignment + cost-model
    profitability scoring of every query's top-``top_k`` candidate pairs —
    exactly the per-candidate work the merge pass performs before its serial
    commit, at the paper's exploration threshold (``top_k=5`` by default).
    Every backend runs it over an identically regenerated module
    (:func:`parallel_workload`); the per-backend *ranking digest* — every
    query's ranked answer plus every pair's score — must be bit-identical,
    which is the determinism bar ``bench_parallel.py`` asserts.  With
    ``cache_dir`` each (size, backend) cell gets its own cold store subtree,
    so backends are compared cold-for-cold.
    """
    size_model = get_target(target)
    result = ParallelRankingResult(top_k=top_k)
    for num_functions in sizes:
        for backend in backends:
            module = parallel_workload(num_functions, seed=seed)
            store = None
            if cache_dir is not None:
                store = ArtifactStore(os.path.join(
                    cache_dir, f"size{num_functions}", backend))
            engine = ParallelEngine(ParallelConfig(backend=backend,
                                                   workers=workers))
            started = time.perf_counter()
            precomputed = engine.precompute_index_artifacts(
                module, strategy, min_size=3, store=store)
            index = make_index(module, strategy, min_size=3,
                               artifact_store=store, precomputed=precomputed)
            index_seconds = time.perf_counter() - started

            queries = index.functions_by_size()
            started = time.perf_counter()
            answers = engine.prefetch_candidates(index, queries, top_k)
            query_seconds = time.perf_counter() - started

            seen_pairs = set()
            pairs = []
            for function in queries:
                answer = answers.get(function)
                for candidate in answer.candidates if answer else ():
                    partner = candidate.function
                    key = tuple(sorted((function.name, partner.name)))
                    if key not in seen_pairs:
                        seen_pairs.add(key)
                        pairs.append((function, partner))
            started = time.perf_counter()
            scores = engine.score_pairs(pairs, size_model)
            score_seconds = time.perf_counter() - started
            engine.close()

            answered = {function: answer.candidates
                        for function, answer in answers.items()}
            digest = (
                tuple((function.name,
                       tuple((candidate.function.name, candidate.distance)
                             for candidate in answered.get(function, ())))
                      for function in queries),
                tuple((score.first, score.second, score.matches,
                       score.dp_cells, score.benefit, score.profitable)
                      for score in scores),
            )
            result.rows.append(ParallelRankingRow(
                num_functions=num_functions,
                backend=backend,
                workers=engine.pool.workers,
                index_seconds=index_seconds,
                query_seconds=query_seconds,
                score_seconds=score_seconds,
                queries=len(queries),
                pairs_scored=len(pairs),
                parallel_stats=engine.stats,
                ranking_digest=digest))
    return result


def candidate_search_comparison(
        sizes: Sequence[int] = (256, 512, 1024),
        strategies: Sequence[Union[str, SearchStrategy]] = (
            "exhaustive", "size_buckets", "minhash_lsh"),
        top_k: int = 2,
        max_queries: int = 128,
        seed: int = 7) -> SearchComparisonResult:
    """Compare candidate-search strategies as the module grows.

    For each module size, every strategy answers the same (deterministically
    sampled) top-k queries; recall and quality are measured against the
    exhaustive index's answers, and scan fraction comes from the index's own
    :class:`~repro.search.stats.SearchStats`.
    """
    result = SearchComparisonResult(top_k=top_k)
    for num_functions in sizes:
        module = search_workload(num_functions, seed=seed)
        reference = make_index(module, "exhaustive", min_size=3)
        queries = reference.functions_by_size()
        if len(queries) > max_queries:
            stride = len(queries) / max_queries
            queries = [queries[int(i * stride)] for i in range(max_queries)]
        expected = {f: reference.candidates_for(f, top_k) for f in queries}
        for strategy in strategies:
            started = time.perf_counter()
            index = make_index(module, strategy, min_size=3)
            build_seconds = time.perf_counter() - started
            recall_total = quality_total = 0.0
            started = time.perf_counter()
            answers = {f: index.candidates_for(f, top_k) for f in queries}
            query_seconds = time.perf_counter() - started
            for function in queries:
                recall_total += topk_recall(
                    [c.function for c in expected[function]],
                    [c.function for c in answers[function]])
                quality_total += quality_recall(expected[function], answers[function])
            result.rows.append(SearchComparisonRow(
                num_functions=num_functions,
                strategy=index.strategy.name,
                build_seconds=build_seconds,
                query_seconds=query_seconds,
                queries=len(queries),
                recall=recall_total / len(queries) if queries else 1.0,
                quality=quality_total / len(queries) if queries else 1.0,
                scan_fraction=index.stats.scan_fraction))
    return result
