"""Measurement utilities for the experiment harness: timing, peak memory and
aggregate statistics (geometric means) used across the figures."""

from __future__ import annotations

import math
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Tuple

from ..analysis.manager import AnalysisStats
from ..parallel.stats import ParallelStats
from ..persist import StoreStats
from ..search.stats import SearchStats


@dataclass
class Measurement:
    """Wall-clock and peak-memory observation of one callable."""

    seconds: float
    peak_bytes: int = 0


def measure_time(callable_: Callable, *args, **kwargs) -> Tuple[object, float]:
    """Run ``callable_`` and return ``(result, elapsed_seconds)``."""
    started = time.perf_counter()
    result = callable_(*args, **kwargs)
    return result, time.perf_counter() - started


def measure_peak_memory(callable_: Callable, *args, **kwargs) -> Tuple[object, int]:
    """Run ``callable_`` under ``tracemalloc`` and return ``(result, peak_bytes)``.

    This mirrors the paper's Figure 22 methodology of measuring memory usage
    only while the function-merging optimisation runs.
    """
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        result = callable_(*args, **kwargs)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not already_tracing:
            tracemalloc.stop()
    return result, peak


@contextmanager
def stopwatch():
    """Context manager yielding a mutable :class:`Measurement`."""
    measurement = Measurement(0.0)
    started = time.perf_counter()
    try:
        yield measurement
    finally:
        measurement.seconds = time.perf_counter() - started


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (zero/negative values are clamped).

    The paper reports geometric means over benchmarks for reductions and
    normalised times; values are clamped to a small epsilon so an occasional
    zero (e.g. a benchmark with no merges) does not collapse the mean.
    """
    values = list(values)
    if not values:
        return 0.0
    clamped = [max(v, 1e-9) for v in values]
    return math.exp(sum(math.log(v) for v in clamped) / len(clamped))


def arithmetic_mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def _merge_distinct(combined, stats):
    """Merge each *distinct* stats object into ``combined`` exactly once.

    Several results routinely alias one live stats object — pipeline runs
    sharing an :class:`~repro.persist.ArtifactStore` share its
    :class:`~repro.persist.StoreStats`, and a ``PipelineResult`` and its
    ``report`` expose the same search/persist objects — so entries are
    deduplicated by identity before merging; folding the same object twice
    would double every total.  ``None`` entries are skipped.
    """
    seen = set()
    for entry in stats:
        if entry is None or id(entry) in seen:
            continue
        seen.add(id(entry))
        combined.merge(entry)
    return combined


def combine_search_stats(stats: Iterable[Optional[SearchStats]]) -> SearchStats:
    """Roll per-module candidate-search stats up into one aggregate.

    Accepts the ``report.search_stats`` of many merge runs (``None`` entries —
    e.g. from baseline-only pipeline runs — are skipped, and aliases of one
    stats object count once) and returns a single :class:`SearchStats` whose
    totals and :attr:`~SearchStats.scan_fraction` cover the whole experiment.
    """
    return _merge_distinct(SearchStats(), stats)


def combine_analysis_stats(stats: Iterable[Optional[AnalysisStats]]) -> AnalysisStats:
    """Roll per-run analysis-manager counters up into one aggregate.

    Accepts the ``analysis_stats`` of many pipeline results (``None`` entries
    — runs without analysis caching — are skipped, and aliases of one stats
    object count once); the merged counters cover the whole experiment,
    mirroring :func:`combine_search_stats`.
    """
    return _merge_distinct(AnalysisStats(), stats)


def combine_store_stats(stats: Iterable[Optional[StoreStats]]) -> StoreStats:
    """Roll per-run artifact-store counters up into one aggregate.

    Accepts the ``persist_stats`` of many pipeline results (``None`` entries
    — runs without a ``cache_dir`` — are skipped).  Runs sharing one live
    :class:`~repro.persist.ArtifactStore` share its stats object; such
    aliases are merged exactly once, so passing every run of a shared-store
    experiment is safe and never double-counts.
    """
    return _merge_distinct(StoreStats(), stats)


def combine_parallel_stats(stats: Iterable[Optional[ParallelStats]]
                           ) -> ParallelStats:
    """Roll per-run worker-pool counters up into one aggregate.

    Accepts the ``parallel_stats`` of many pipeline results (``None`` entries
    — runs without a worker engine — are skipped, and aliases of one stats
    object count once), mirroring :func:`combine_search_stats`.
    """
    return _merge_distinct(ParallelStats(), stats)


def speedup(reference_seconds: float, measured_seconds: float) -> float:
    """Speedup of ``measured`` over ``reference`` (reference / measured)."""
    if measured_seconds <= 0:
        return float("inf") if reference_seconds > 0 else 1.0
    return reference_seconds / measured_seconds
